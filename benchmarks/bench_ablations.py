"""Ablations for the design choices DESIGN.md calls out.

Not figures from the paper — these isolate the mechanisms behind them:

1. **Locality rewrites** (Section 2.2 cases 1-3): network volume of the
   TPC-H workload under the SD design with the co-partitioning-aware
   rewriter vs. an engine that shuffles every join.
2. **Verified effective-hash placement** (our chain-transitivity
   extension): runtimes of the part/lineitem chain queries with and
   without it.
3. **Partition pruning** (the paper's future work): partitions scanned by
   point look-ups with and without pruning.
"""

from conftest import NODES, TPCH_SF

from repro.bench import (
    format_table,
    materialize_variant,
    paper_cost_parameters,
    tpch_variants,
)
from repro.query import Executor, Query
from repro.query.expressions import col, lit
from repro.workloads.tpch import SMALL_TABLES, runtime_queries


def test_ablation_locality_rewrites(benchmark, tpch_db, tpch_specs, report):
    """Without cases 1-3 every join shuffles: network explodes."""
    variants = tpch_variants(tpch_db, NODES, tpch_specs, SMALL_TABLES)
    partitioned = materialize_variant(
        tpch_db, variants["SD (wo small tables)"]
    )[0]
    queries = runtime_queries()

    def experiment():
        results = {}
        for locality in (True, False):
            executor = Executor(partitioned, locality=locality)
            network = 0
            shuffles = 0
            for plan in queries.values():
                stats = executor.execute(plan).stats
                network += stats.network_bytes
                shuffles += stats.shuffle_count
            results[locality] = (network, shuffles)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        ("with locality cases", results[True][0], results[True][1]),
        ("all joins shuffled", results[False][0], results[False][1]),
        (
            "network ratio",
            round(results[False][0] / max(results[True][0], 1), 1),
            "",
        ),
    ]
    report(
        "ablation_locality_rewrites",
        format_table(
            ["Rewriter", "network bytes (workload)", "shuffles"],
            rows,
            title="Ablation: Section 2.2 locality rewrites on TPC-H under SD",
        ),
    )
    assert results[False][0] > 3 * results[True][0]
    assert results[False][1] > results[True][1]


def test_ablation_effective_hash(benchmark, tpch_db, tpch_specs, report):
    """Verified chain placement makes transitive chain joins local."""
    cost = paper_cost_parameters(TPCH_SF)
    variants = tpch_variants(tpch_db, NODES, tpch_specs, SMALL_TABLES)
    chain_queries = {
        name: plan
        for name, plan in runtime_queries().items()
        if name in ("Q8", "Q9", "Q14", "Q17", "Q19")
    }

    def experiment():
        results = {}
        for enabled in (True, False):
            partitioned = materialize_variant(
                tpch_db, variants["SD (wo small tables)"]
            )[0]
            if not enabled:
                for table in partitioned.tables.values():
                    table.effective_hash = None
            executor = Executor(partitioned)
            results[enabled] = {
                name: executor.execute(plan).simulated_seconds(cost)
                for name, plan in chain_queries.items()
            }
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        (
            name,
            round(results[True][name], 1),
            round(results[False][name], 1),
            round(results[False][name] / results[True][name], 1),
        )
        for name in chain_queries
    ]
    report(
        "ablation_effective_hash",
        format_table(
            ["Query", "with (s)", "without (s)", "slowdown"],
            rows,
            title="Ablation: verified effective-hash chain placement "
            "(part/lineitem chain queries, SD design)",
        ),
    )
    total_with = sum(results[True].values())
    total_without = sum(results[False].values())
    assert total_without > 1.3 * total_with


def test_ablation_partition_pruning(benchmark, tpch_db, tpch_specs, report):
    """Point look-ups touch one partition instead of all of them."""
    variants = tpch_variants(tpch_db, NODES, tpch_specs, SMALL_TABLES)
    partitioned = materialize_variant(
        tpch_db, variants["SD (wo small tables)"]
    )[0]
    lookups = {
        "part by partkey": Query.scan("part", alias="p")
        .where(col("p.p_partkey") == lit(42))
        .aggregate(aggregates=[("count", None, "n")])
        .plan(),
        "partsupp by partkey": Query.scan("partsupp", alias="ps")
        .where(col("ps.ps_partkey") == lit(42))
        .aggregate(aggregates=[("count", None, "n")])
        .plan(),
        "lineitem by partkey": Query.scan("lineitem", alias="l")
        .where(col("l.l_partkey") == lit(42))
        .aggregate(aggregates=[("count", None, "n")])
        .plan(),
    }

    def experiment():
        results = {}
        for name, plan in lookups.items():
            pruned = Executor(partitioned, optimizations=True).execute(plan)
            full = Executor(partitioned, optimizations=False).execute(plan)
            assert pruned.rows == full.rows
            results[name] = (
                pruned.stats.partitions_scanned,
                full.stats.partitions_scanned,
            )
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        (name, pruned, full) for name, (pruned, full) in results.items()
    ]
    report(
        "ablation_partition_pruning",
        format_table(
            ["Point look-up", "partitions (pruned)", "partitions (full)"],
            rows,
            title="Ablation: partition pruning for hash and PREF tables",
        ),
    )
    for name, (pruned, full) in results.items():
        assert pruned < full, name
        assert pruned == 1, name  # effective-hash chains pin one partition
