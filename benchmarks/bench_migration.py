"""Extension: migration cost between partitioning designs.

Not a paper figure — a deployment question the library answers: what does
switching an existing cluster from classical partitioning to the SD/WD
designs cost, compared to reloading from scratch?
"""

from conftest import NODES, TPCH_SF

from repro.bench import format_table, tpch_variants
from repro.partitioning import plan_migration
from repro.workloads.tpch import SMALL_TABLES


def test_migration_costs(benchmark, tpch_db, tpch_specs, report):
    variants = tpch_variants(tpch_db, NODES, tpch_specs, SMALL_TABLES)
    cp = variants["Classical"].configs[0]
    sd = variants["SD (wo small tables)"].configs[0]
    sd_nored = variants["SD (wo small tables, wo redundancy)"].configs[0]

    def experiment():
        return {
            "Classical -> SD": plan_migration(tpch_db, cp, sd),
            "Classical -> SD wo red.": plan_migration(tpch_db, cp, sd_nored),
            "SD -> SD wo red.": plan_migration(tpch_db, sd, sd_nored),
        }

    plans = benchmark.pedantic(experiment, rounds=1, iterations=1)
    row_scale = 10.0 / TPCH_SF
    rows = [
        (
            name,
            plan.copies_moved,
            plan.copies_kept,
            f"{plan.moved_fraction:.0%}",
            round(plan.simulated_seconds(row_scale=row_scale), 1),
        )
        for name, plan in plans.items()
    ]
    report(
        "migration_costs",
        format_table(
            ["Migration", "copies moved", "copies kept", "moved", "sim s"],
            rows,
            title="Extension: re-partitioning migration costs (TPC-H)",
        ),
    )
    # Structure: a real fraction of data stays in place (hash placements
    # overlap), and every plan is cheaper than a 100% reload.
    for name, plan in plans.items():
        assert 0.0 < plan.moved_fraction < 1.0, name
