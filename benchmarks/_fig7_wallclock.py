"""Wall-clock timing of the fig7 TPC-H workload (engine speed probe).

Not a pytest benchmark: run directly to measure how long the engine takes
to physically run the fig7 experiment (all runtime queries under all four
variants).  Loading (variant materialisation) and query execution are
timed separately — vectorizing the operators speeds up execution, not
partition placement — and both are reported along with their sum.  Used
to record the row-engine vs batch-engine speedup in EXPERIMENTS.md.

    PYTHONPATH=src python benchmarks/_fig7_wallclock.py [--repeat 3]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from conftest import NODES, TPCH_SF  # noqa: E402

from repro.bench import paper_cost_parameters, run_workload, tpch_variants  # noqa: E402
from repro.bench.harness import materialize_variant  # noqa: E402
from repro.design import QuerySpec  # noqa: E402
from repro.engine.rows import DEFAULT_BATCH_SIZE  # noqa: E402
from repro.workloads.tpch import (  # noqa: E402
    ALL_QUERIES,
    SMALL_TABLES,
    generate_tpch,
    runtime_queries,
)

VARIANTS = [
    "Classical",
    "SD (wo small tables)",
    "SD (wo small tables, wo redundancy)",
    "WD (wo small tables)",
]


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--analyze", action="store_true", default=False)
    parser.add_argument("--batch-size", type=int, default=DEFAULT_BATCH_SIZE)
    args = parser.parse_args()

    database = generate_tpch(scale_factor=TPCH_SF, seed=1)
    specs = [
        QuerySpec.from_plan(name, build(), database.schema)
        for name, build in ALL_QUERIES.items()
    ]
    cost = paper_cost_parameters(TPCH_SF)
    queries = runtime_queries()
    variants = tpch_variants(database, NODES, specs, SMALL_TABLES)

    load_timings = []
    exec_timings = []
    totals = {}
    for _ in range(args.repeat):
        started = time.perf_counter()
        prepared = {
            name: materialize_variant(database, variants[name])
            for name in VARIANTS
        }
        load_timings.append(time.perf_counter() - started)
        started = time.perf_counter()
        runs = {
            name: run_workload(
                database, variants[name], queries, cost=cost,
                analyze=args.analyze, batch_size=args.batch_size,
                prepared=prepared[name],
            )
            for name in VARIANTS
        }
        exec_timings.append(time.perf_counter() - started)
        totals = {
            name: sum(run.seconds for run in variant_runs.values())
            for name, variant_runs in runs.items()
        }
    best_load = min(load_timings)
    best_exec = min(exec_timings)
    print(
        f"fig7 query execution wall clock: best {best_exec:.2f}s "
        f"of {[round(t, 2) for t in exec_timings]}"
    )
    print(
        f"fig7 variant load wall clock:    best {best_load:.2f}s "
        f"of {[round(t, 2) for t in load_timings]}"
    )
    print(f"fig7 total (load + execute):     best {best_load + best_exec:.2f}s")
    for name in VARIANTS:
        print(f"  {name}: {totals[name]:.1f} simulated seconds")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
