"""Table 1 + Figure 11(a): DL and DR of the TPC-H partitioning variants.

Paper reference (TPC-H, 10 partitions):

    Classical                 DL 1.0   DR 1.21
    SD (wo small tables)      DL 1.0   DR 0.5
    SD (wo small, wo red.)    DL 0.7   DR 0.19
    WD (wo small tables)      DL 1.0   DR 1.5
    All Hashed                DL 0     DR 0
    All Replicated            DL 1.0   DR 9.0
"""

from conftest import NODES

from repro.bench import format_table, measure_variant, tpch_variants
from repro.design import SchemaGraph
from repro.workloads.tpch import SMALL_TABLES

PAPER = {
    "All Hashed": (0.0, 0.0),
    "All Replicated": (1.0, 9.0),
    "Classical": (1.0, 1.21),
    "SD (wo small tables)": (1.0, 0.5),
    "SD (wo small tables, wo redundancy)": (0.7, 0.19),
    "WD (wo small tables)": (1.0, 1.5),
}


def test_table1_locality_vs_redundancy(benchmark, tpch_db, tpch_specs, report):
    def experiment():
        variants = tpch_variants(
            tpch_db, NODES, tpch_specs, SMALL_TABLES, include_baselines=True
        )
        graph = SchemaGraph.from_schema(tpch_db.schema, tpch_db.table_sizes())
        return {
            name: measure_variant(tpch_db, variant, graph)
            for name, variant in variants.items()
        }

    measured = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = []
    for name, result in measured.items():
        paper_dl, paper_dr = PAPER[name]
        rows.append(
            (
                name,
                round(result.data_locality, 2),
                round(result.data_redundancy, 2),
                paper_dl,
                paper_dr,
            )
        )
    report(
        "table1_fig11a_tpch",
        format_table(
            ["Variant", "DL", "DR", "paper DL", "paper DR"],
            rows,
            title="Table 1 / Figure 11(a): TPC-H data-locality vs data-redundancy "
            f"(n={NODES})",
        ),
    )
    # Shape assertions against the paper.
    by_name = {name: result for name, result in measured.items()}
    assert by_name["All Hashed"].data_redundancy == 0.0
    assert by_name["All Replicated"].data_redundancy == NODES - 1
    assert by_name["Classical"].data_locality == 1.0
    assert by_name["SD (wo small tables)"].data_locality == 1.0
    assert 0.5 <= by_name["SD (wo small tables, wo redundancy)"].data_locality <= 0.9
    assert (
        by_name["SD (wo small tables, wo redundancy)"].data_redundancy
        < by_name["SD (wo small tables)"].data_redundancy
        < by_name["Classical"].data_redundancy
    )
