"""Figure 12: data-redundancy as the cluster grows from 1 to 100 nodes.

Paper reference: classical partitioning's DR grows linearly with the node
count (every replicated table is copied to every new node), while SD and
WD grow sub-linearly (PREF duplicates saturate), so PREF-based designs
scale out much better.

This file also hosts the engine-level scale-out axis: the same TPC-H
workload executed by the serial, thread-pool and process-pool scheduling
backends.  Rows and execution stats must be identical (enforced hard);
wall-clock per backend is reported, and on a multicore runner the
process pool must beat serial on at least one heavy query.
"""

import os

from conftest import NODES, TPCDS_SF, TPCH_SF

from repro.bench import (
    Variant,
    compare_backends,
    format_table,
    scaleout_redundancy,
    tpch_variants,
)
from repro.design import (
    SchemaDrivenDesigner,
    WorkloadDrivenDesigner,
    classical_partitioning,
    sd_individual_stars,
)
from repro.workloads import tpcds, tpch
from repro.workloads.tpch import ALL_QUERIES

NODE_COUNTS = [1, 2, 5, 10, 20, 50, 100]


def _tpch_builders(database, specs):
    def cp(count):
        return Variant("cp", [classical_partitioning(database, count)])

    def sd(count):
        result = SchemaDrivenDesigner(database, count).design(
            replicate=tpch.SMALL_TABLES
        )
        return Variant("sd", [result.config])

    def wd(count):
        from repro.bench.harness import _wd_variant

        result = WorkloadDrivenDesigner(database, count).design(
            specs, replicate=tpch.SMALL_TABLES
        )
        return _wd_variant("wd", result, database, count, tpch.SMALL_TABLES)

    return {"CP (wo small tables)": cp, "SD (wo small tables)": sd,
            "WD (wo small tables)": wd}


def test_fig12a_tpch_scaleout(benchmark, tpch_db, tpch_specs, report):
    builders = _tpch_builders(tpch_db, tpch_specs)

    def experiment():
        return {
            name: scaleout_redundancy(tpch_db, builder, NODE_COUNTS)
            for name, builder in builders.items()
        }

    series = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        (count,)
        + tuple(round(series[name][i][1], 2) for name in builders)
        for i, count in enumerate(NODE_COUNTS)
    ]
    report(
        "fig12a_tpch_scaleout",
        format_table(
            ["nodes"] + list(builders),
            rows,
            title="Figure 12(a): TPC-H data-redundancy vs cluster size",
        ),
    )
    _assert_growth_shapes(series, cp_name="CP (wo small tables)")


def test_fig12b_tpcds_scaleout(benchmark, tpcds_db, tpcds_specs, report):
    def cp_stars(count):
        design = sd_stars = None
        stars = None
        from repro.design import classical_individual_stars

        stars = classical_individual_stars(
            tpcds_db, count, tpcds.FACT_TABLES
        )
        return Variant("cp-stars", list(stars.stars.values()))

    def sd_stars(count):
        stars = sd_individual_stars(
            tpcds_db, count, tpcds.FACT_TABLES, exclude=tpcds.SMALL_TABLES
        )
        return Variant("sd-stars", list(stars.stars.values()))

    def wd(count):
        from repro.bench.harness import _wd_variant

        result = WorkloadDrivenDesigner(tpcds_db, count).design(
            tpcds_specs, replicate=tpcds.SMALL_TABLES
        )
        return _wd_variant("wd", result, tpcds_db, count, tpcds.SMALL_TABLES)

    builders = {
        "CP (Individual Stars)": cp_stars,
        "SD (Individual Stars)": sd_stars,
        "WD (wo small tables)": wd,
    }

    def experiment():
        return {
            name: scaleout_redundancy(tpcds_db, builder, NODE_COUNTS)
            for name, builder in builders.items()
        }

    series = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        (count,)
        + tuple(round(series[name][i][1], 2) for name in builders)
        for i, count in enumerate(NODE_COUNTS)
    ]
    report(
        "fig12b_tpcds_scaleout",
        format_table(
            ["nodes"] + list(builders),
            rows,
            title="Figure 12(b): TPC-DS data-redundancy vs cluster size",
        ),
    )
    _assert_growth_shapes(series, cp_name="CP (Individual Stars)")


#: The engine-backend comparison workload: the heaviest scan/aggregate
#: queries (Q1, Q18) plus a representative join pipeline (Q3) and a
#: selective filter (Q6).
BACKEND_QUERIES = ("Q1", "Q3", "Q6", "Q18")


def test_fig12c_backend_scaleout(tpch_db, report):
    """Serial vs thread pool vs process pool on one SD-partitioned TPC-H
    database.  ``compare_backends(check=True)`` raises on any row or
    ExecutionStats divergence, so passing *is* the equivalence proof; the
    wall-clock table shows where true multicore execution pays off."""
    sd = SchemaDrivenDesigner(tpch_db, NODES).design(
        replicate=tpch.SMALL_TABLES
    )
    variant = Variant("SD (wo small tables)", [sd.config])
    queries = {name: ALL_QUERIES[name]() for name in BACKEND_QUERIES}
    results = compare_backends(
        tpch_db,
        variant,
        queries,
        backends=("serial", "thread", "process"),
        check=True,
    )
    backends = list(results)
    rows = []
    speedups = {}
    for name in queries:
        serial_seconds = results["serial"][name].wall_seconds
        process_seconds = results["process"][name].wall_seconds
        speedups[name] = serial_seconds / max(process_seconds, 1e-9)
        rows.append(
            (name,)
            + tuple(
                round(results[b][name].wall_seconds, 4) for b in backends
            )
            + (round(speedups[name], 2),)
        )
    report(
        "fig12c_backend_scaleout",
        format_table(
            ["query"] + [f"{b} (s)" for b in backends] + ["process speedup"],
            rows,
            title=(
                "Figure 12(c): engine backends on TPC-H "
                f"(identical rows+stats enforced; {os.cpu_count()} cores)"
            ),
        ),
    )
    if (os.cpu_count() or 1) > 1:
        assert max(speedups.values()) > 1.0, (
            "process pool should beat serial on at least one heavy query "
            f"on a multicore runner; speedups={speedups}"
        )


def _assert_growth_shapes(series, cp_name):
    """CP grows linearly with n; PREF designs grow sub-linearly."""
    for name, points in series.items():
        values = dict(points)
        growth_10_to_100 = values[100] - values[10]
        if name == cp_name:
            # Linear: +90 nodes adds close to 90x the per-node replica cost.
            assert growth_10_to_100 > 5 * (values[10] - values[5] + 1e-9) or (
                growth_10_to_100 > 1.0
            )
        else:
            # Sub-linear: the jump from 10 to 100 nodes is far below the
            # replication-style factor-10 growth.
            assert values[100] < values[10] * 6 + 1.0
    cp_values = dict(series[cp_name])
    for name, points in series.items():
        if name != cp_name:
            assert dict(points)[100] < cp_values[100]
