"""Figure 11(b): DL and DR of the TPC-DS partitioning variants.

Paper reference (TPC-DS, 10 partitions):

    All Hashed      DL 0     DR 0          All Replicated  DL 1.0  DR 9.0
    CP Naive        DL 1.0   DR 4.15       CP Ind. Stars   DL 1.0  DR 1.32
    SD Naive        DL 0.49  DR 0.23       SD Ind. Stars   DL 0.65 DR 0.38
    WD              DL 1.0   DR 1.4
"""

from conftest import NODES

from repro.bench import format_table, measure_variant, tpcds_variants
from repro.design import SchemaGraph
from repro.workloads.tpcds import FACT_TABLES, SMALL_TABLES

PAPER = {
    "All Hashed": (0.0, 0.0),
    "All Replicated": (1.0, 9.0),
    "CP Naive": (1.0, 4.15),
    "CP Ind. Stars": (1.0, 1.32),
    "SD Naive": (0.49, 0.23),
    "SD Ind. Stars": (0.65, 0.38),
    "WD": (1.0, 1.4),
}


def test_fig11b_tpcds_locality_vs_redundancy(
    benchmark, tpcds_db, tpcds_specs, report
):
    def experiment():
        variants = tpcds_variants(
            tpcds_db, NODES, tpcds_specs, SMALL_TABLES, FACT_TABLES
        )
        graph = SchemaGraph.from_schema(
            tpcds_db.schema, tpcds_db.table_sizes()
        )
        return {
            name: measure_variant(tpcds_db, variant, graph)
            for name, variant in variants.items()
        }

    measured = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        (
            name,
            round(result.data_locality, 2),
            round(result.data_redundancy, 2),
            PAPER[name][0],
            PAPER[name][1],
        )
        for name, result in measured.items()
    ]
    report(
        "fig11b_tpcds",
        format_table(
            ["Variant", "DL", "DR", "paper DL", "paper DR"],
            rows,
            title=f"Figure 11(b): TPC-DS data-locality vs data-redundancy (n={NODES})",
        ),
    )
    # Shapes from the paper:
    assert measured["All Replicated"].data_redundancy == NODES - 1
    assert measured["CP Naive"].data_locality == 1.0
    # Splitting into stars slashes CP's redundancy.
    assert (
        measured["CP Ind. Stars"].data_redundancy
        < 0.5 * measured["CP Naive"].data_redundancy
    )
    # SD trades locality for the lowest redundancy of the real designs.
    assert measured["SD Naive"].data_redundancy == min(
        measured[name].data_redundancy
        for name in ("CP Naive", "CP Ind. Stars", "SD Naive", "SD Ind. Stars", "WD")
    )
    assert measured["SD Naive"].data_locality < 1.0
    # The star variant recovers locality for a little more redundancy.
    assert (
        measured["SD Ind. Stars"].data_locality
        >= measured["SD Naive"].data_locality
    )
    # WD reaches (near-)full per-query locality without manual effort.
    assert measured["WD"].data_locality > 0.9
