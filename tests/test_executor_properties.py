"""Property-based cross-checking of the distributed executor."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers import (
    all_hashed_config,
    assert_same_rows,
    pref_chain_config,
    ref_chain_config,
    shop_database,
)
from repro.partitioning import partition_database
from repro.query import Executor, JoinKind, LocalExecutor, Query
from repro.query.expressions import col, lit

CONFIGS = [pref_chain_config, ref_chain_config, all_hashed_config]

JOIN_EDGES = [
    ("lineitem", "l", "orders", "o", "l.orderkey", "o.orderkey"),
    ("orders", "o", "customer", "c", "o.custkey", "c.custkey"),
    ("lineitem", "l", "item", "i", "l.itemkey", "i.itemkey"),
    ("customer", "c", "nation", "n", "c.nationkey", "n.nationkey"),
]


@st.composite
def join_plans(draw):
    """Random two-table joins with optional filters and aggregation."""
    left_table, left_alias, right_table, right_alias, lk, rk = draw(
        st.sampled_from(JOIN_EDGES)
    )
    kind = draw(
        st.sampled_from(
            [JoinKind.INNER, JoinKind.SEMI, JoinKind.ANTI, JoinKind.LEFT_OUTER]
        )
    )
    swap = draw(st.booleans())
    left = Query.scan(left_table, alias=left_alias)
    right = Query.scan(right_table, alias=right_alias)
    left_is_orders = left_alias == "o"
    if swap:
        left, right, lk, rk = right, left, rk, lk
        left_is_orders = right_alias == "o"
    filter_orders = draw(st.booleans())
    threshold = draw(st.integers(min_value=0, max_value=100))
    if filter_orders and "o" in (left_alias, right_alias):
        condition = col("o.total") >= lit(float(threshold))
        if left_is_orders:
            left = left.where(condition)
        else:
            right = right.where(condition)
    joined = left.join(right, on=[(lk, rk)], kind=kind)
    return joined.aggregate(aggregates=[("count", None, "cnt")]).plan()


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    plan=join_plans(),
    seed=st.integers(min_value=0, max_value=500),
    config_index=st.integers(min_value=0, max_value=2),
    n=st.integers(min_value=1, max_value=7),
    optimizations=st.booleans(),
)
def test_random_joins_match_reference(plan, seed, config_index, n, optimizations):
    database = shop_database(seed=seed, customers=12, orders=30, lineitems=70)
    config = CONFIGS[config_index](n)
    partitioned = partition_database(database, config)
    executor = Executor(partitioned, optimizations=optimizations)
    local = LocalExecutor(database)
    assert_same_rows(executor.execute(plan).rows, local.execute(plan).rows)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=500),
    n=st.integers(min_value=1, max_value=6),
    group_column=st.sampled_from(["o.custkey", "o.orderkey"]),
    func=st.sampled_from(["sum", "count", "avg", "min", "max"]),
)
def test_random_aggregations_match_reference(seed, n, group_column, func):
    database = shop_database(seed=seed, customers=10, orders=40, lineitems=60)
    config = pref_chain_config(n)
    partitioned = partition_database(database, config)
    expr = None if func == "count" else col("o.total")
    plan = (
        Query.scan("orders", alias="o")
        .aggregate(group_by=[group_column], aggregates=[(func, expr, "v")])
        .order_by([group_column])
        .plan()
    )
    executor = Executor(partitioned)
    local = LocalExecutor(database)
    assert_same_rows(executor.execute(plan).rows, local.execute(plan).rows)
