"""Tests for the partitioner, including the paper's Figure 2 example."""

from helpers import pref_chain_config, ref_chain_config
from repro.catalog import DatabaseSchema, DataType
from repro.partitioning import (
    HashScheme,
    JoinPredicate,
    PartitioningConfig,
    PrefScheme,
    RangeScheme,
    RoundRobinScheme,
    check_pref_invariants,
    partition_database,
)
from repro.storage import Database


def figure2_database() -> Database:
    schema = DatabaseSchema()
    schema.create_table(
        "lineitem",
        [("linekey", DataType.INTEGER), ("orderkey", DataType.INTEGER)],
        primary_key=["linekey"],
    )
    schema.create_table(
        "orders",
        [("orderkey", DataType.INTEGER), ("custkey", DataType.INTEGER)],
        primary_key=["orderkey"],
    )
    schema.create_table(
        "customer",
        [("custkey", DataType.INTEGER), ("cname", DataType.VARCHAR)],
        primary_key=["custkey"],
    )
    database = Database(schema)
    database.load("lineitem", [(0, 1), (1, 4), (2, 1), (3, 2), (4, 3)])
    database.load("orders", [(1, 1), (2, 1), (3, 2), (4, 1)])
    database.load("customer", [(1, "A"), (2, "B"), (3, "C")])
    return database


class _ModuloHash(HashScheme):
    """Figure 2 uses linekey % 3; pin placement for the exact comparison."""

    def partition_of(self, key):
        return key % self.partition_count


def figure2_config() -> PartitioningConfig:
    config = PartitioningConfig(3)
    config.add("lineitem", _ModuloHash(("linekey",), 3))
    config.add(
        "orders",
        PrefScheme(
            "lineitem",
            JoinPredicate.equi("orders", "orderkey", "lineitem", "orderkey"),
        ),
    )
    config.add(
        "customer",
        PrefScheme(
            "orders",
            JoinPredicate.equi("customer", "custkey", "orders", "custkey"),
        ),
    )
    return config


class TestFigure2:
    """The worked example of paper Figure 2, reproduced exactly."""

    def test_lineitem_placement(self):
        partitioned = partition_database(figure2_database(), figure2_config())
        lineitem = partitioned.table("lineitem")
        assert lineitem.partitions[0].rows == [(0, 1), (3, 2)]
        assert lineitem.partitions[1].rows == [(1, 4), (4, 3)]
        assert lineitem.partitions[2].rows == [(2, 1)]

    def test_orders_duplicated_for_locality(self):
        partitioned = partition_database(figure2_database(), figure2_config())
        orders = partitioned.table("orders")
        assert sorted(orders.partitions[0].rows) == [(1, 1), (2, 1)]
        assert sorted(orders.partitions[1].rows) == [(3, 2), (4, 1)]
        assert orders.partitions[2].rows == [(1, 1)]
        # orderkey=1 is duplicated (partitions 0 and 2).
        assert orders.total_rows == 5
        assert orders.canonical_row_count == 4
        assert orders.duplicate_count == 1

    def test_customer_duplicated_and_orphan_placed(self):
        partitioned = partition_database(figure2_database(), figure2_config())
        customer = partitioned.table("customer")
        # Customer 1 has orders in every partition; customer 3 (no orders)
        # is assigned round-robin to partition 0.
        assert sorted(customer.partitions[0].rows) == [(1, "A"), (3, "C")]
        assert sorted(customer.partitions[1].rows) == [(1, "A"), (2, "B")]
        assert customer.partitions[2].rows == [(1, "A")]
        assert customer.total_rows == 5
        assert customer.canonical_row_count == 3

    def test_has_partner_bits(self):
        partitioned = partition_database(figure2_database(), figure2_config())
        customer = partitioned.table("customer")
        bits = {}
        for partition in customer.partitions:
            for index, row in enumerate(partition.rows):
                bits.setdefault(row[0], set()).add(
                    partition.has_partner[index]
                )
        assert bits[1] == {True}
        assert bits[2] == {True}
        assert bits[3] == {False}  # the orphan

    def test_seed_table_resolution(self):
        partitioned = partition_database(figure2_database(), figure2_config())
        assert partitioned.table("orders").seed_table == "lineitem"
        assert partitioned.table("customer").seed_table == "lineitem"
        assert partitioned.table("lineitem").seed_table == "lineitem"

    def test_invariants_hold_exactly(self):
        database = figure2_database()
        config = figure2_config()
        check_pref_invariants(
            partition_database(database, config), config, exact=True
        )


class TestPartitioner:
    def test_pref_chain_invariants(self, shop_db):
        config = pref_chain_config(4)
        partitioned = partition_database(shop_db, config)
        check_pref_invariants(partitioned, config, exact=True)

    def test_ref_chain_has_no_duplicates(self, shop_db):
        config = ref_chain_config(4)
        partitioned = partition_database(shop_db, config)
        check_pref_invariants(partitioned, config, exact=True)
        # REF-like chains (referencing primary keys) never duplicate.
        assert partitioned.table("orders").duplicate_count == 0
        assert partitioned.table("lineitem").duplicate_count == 0

    def test_replicated_table_on_every_node(self, shop_db):
        config = pref_chain_config(4)
        partitioned = partition_database(shop_db, config)
        nation = partitioned.table("nation")
        for partition in nation.partitions:
            assert partition.row_count == shop_db.table("nation").row_count
        assert nation.canonical_row_count == shop_db.table("nation").row_count

    def test_every_base_tuple_stored(self, shop_db):
        config = pref_chain_config(4)
        partitioned = partition_database(shop_db, config)
        for name in config.tables:
            assert (
                partitioned.table(name).canonical_row_count
                == shop_db.table(name).row_count
            )

    def test_round_robin_scheme(self, shop_db):
        config = PartitioningConfig(4)
        config.add("nation", RoundRobinScheme(4))
        partitioned = partition_database(shop_db, config)
        sizes = [p.row_count for p in partitioned.table("nation").partitions]
        assert sum(sizes) == 4
        assert max(sizes) - min(sizes) <= 1

    def test_range_scheme(self, shop_db):
        config = PartitioningConfig(3)
        config.add("customer", RangeScheme("custkey", (5, 12)))
        partitioned = partition_database(shop_db, config)
        parts = partitioned.table("customer").partitions
        assert all(row[0] <= 5 for row in parts[0].rows)
        assert all(5 < row[0] <= 12 for row in parts[1].rows)
        assert all(row[0] > 12 for row in parts[2].rows)

    def test_effective_hash_for_ref_chain(self):
        from helpers import shop_database

        database = shop_database(seed=2, orphans=False)
        config = ref_chain_config(4)
        partitioned = partition_database(database, config)
        assert partitioned.table("orders").effective_hash == ("custkey",)
        # lineitem's chain maps custkey through orderkey: not expressible.
        assert partitioned.table("lineitem").effective_hash is None

    def test_effective_hash_disabled_by_orphans(self, shop_db):
        config = ref_chain_config(4)
        partitioned = partition_database(shop_db, config)
        # shop_db has orphan orders placed round-robin, off the hash grid.
        assert partitioned.table("orders").effective_hash is None

    def test_effective_hash_absent_with_duplicates(self, shop_db):
        config = pref_chain_config(4)
        partitioned = partition_database(shop_db, config)
        # orders referencing lineitem on a non-unique key gets duplicates.
        assert partitioned.table("orders").effective_hash is None

    def test_partial_configuration(self, shop_db):
        config = PartitioningConfig(4)
        config.add("customer", HashScheme(("custkey",), 4))
        partitioned = partition_database(shop_db, config)
        assert partitioned.table_names == ("customer",)
        assert not partitioned.has_table("orders")
