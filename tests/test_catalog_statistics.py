"""Tests for frequency histograms and sampling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.catalog import build_histogram


class TestBuildHistogram:
    def test_full_scan_counts_exactly(self):
        hist = build_histogram(["a", "b", "a", "a"])
        assert hist.frequency("a") == 3
        assert hist.frequency("b") == 1
        assert hist.frequency("zzz") == 0
        assert hist.distinct_count == 2
        assert hist.total_count == 4

    def test_sampling_reduces_rows(self):
        values = list(range(1000))
        hist = build_histogram(values, sampling_rate=0.1, seed=1)
        assert hist.row_count == 100
        assert hist.sampling_rate == 0.1

    def test_sampling_is_deterministic(self):
        values = list(range(500))
        first = build_histogram(values, sampling_rate=0.2, seed=9)
        second = build_histogram(values, sampling_rate=0.2, seed=9)
        assert first.frequencies == second.frequencies

    def test_scaled_frequency_extrapolates(self):
        values = [1] * 100
        hist = build_histogram(values, sampling_rate=0.5, seed=0)
        assert hist.scaled_frequency(1) == pytest.approx(100.0)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            build_histogram([1], sampling_rate=0.0)
        with pytest.raises(ValueError):
            build_histogram([1], sampling_rate=1.5)

    def test_empty_values(self):
        hist = build_histogram([], sampling_rate=0.5)
        assert hist.distinct_count == 0
        assert hist.total_count == 0

    @given(
        st.lists(st.integers(min_value=0, max_value=20), max_size=200),
        st.floats(min_value=0.05, max_value=1.0),
    )
    def test_sample_counts_never_exceed_truth(self, values, rate):
        hist = build_histogram(values, sampling_rate=rate, seed=3)
        for value, count in hist.items():
            assert count <= values.count(value)
        assert sum(hist.frequencies.values()) == hist.row_count
