"""Property-based tests for Definition 1 invariants (hypothesis)."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers import (
    all_hashed_config,
    pref_chain_config,
    ref_chain_config,
    shop_database,
    shop_schema,
)
from repro.partitioning import (
    BulkLoader,
    check_pref_invariants,
    partition_database,
)
from repro.storage import Database

CONFIG_BUILDERS = {
    "pref": pref_chain_config,
    "ref": ref_chain_config,
    "hashed": all_hashed_config,
}


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=1, max_value=9),
    config_name=st.sampled_from(sorted(CONFIG_BUILDERS)),
)
def test_partitioning_preserves_definition_1(seed, n, config_name):
    """Freshly partitioned databases satisfy Definition 1 exactly."""
    database = shop_database(seed=seed, customers=12, orders=30, lineitems=80)
    config = CONFIG_BUILDERS[config_name](n)
    partitioned = partition_database(database, config)
    check_pref_invariants(partitioned, config, exact=True)
    for table in config.tables:
        assert (
            partitioned.table(table).canonical_row_count
            == database.table(table).row_count
        )


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=2, max_value=6),
    batch_count=st.integers(min_value=1, max_value=4),
)
def test_incremental_loading_preserves_locality(seed, n, batch_count):
    """Interleaved incremental loads keep the co-location guarantee."""
    database = shop_database(seed=seed, customers=10, orders=25, lineitems=60)
    config = pref_chain_config(n)
    partitioned = partition_database(Database(shop_schema()), config)
    loader = BulkLoader(partitioned, config)
    rng = random.Random(seed)
    # Split each table's rows into batches and interleave table order.
    batches = []
    for table in config.tables:
        rows = list(database.table(table).rows)
        rng.shuffle(rows)
        size = max(1, len(rows) // batch_count)
        for start in range(0, len(rows), size):
            batches.append((table, rows[start : start + size]))
    rng.shuffle(batches)
    for table, rows in batches:
        loader.insert(table, rows)
    # Exactness does not hold for interleaved loads (stale round-robin
    # copies are allowed) but the locality guarantee must.
    check_pref_invariants(partitioned, config, exact=False)
    for table in config.tables:
        assert (
            partitioned.table(table).canonical_row_count
            == database.table(table).row_count
        )


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=2, max_value=8),
)
def test_fk_order_loading_matches_fresh_partitioning_sizes(seed, n):
    """Loading in FK order yields the same stored sizes as partitioning."""
    database = shop_database(seed=seed, customers=10, orders=25, lineitems=60)
    config = pref_chain_config(n)
    fresh = partition_database(database, config)
    loaded = partition_database(Database(shop_schema()), config)
    loader = BulkLoader(loaded, config)
    for table in config.load_order():
        loader.insert(table, database.table(table).rows)
    for table in config.tables:
        assert loaded.table(table).total_rows == fresh.table(table).total_rows
        assert (
            loaded.table(table).duplicate_count
            == fresh.table(table).duplicate_count
        )
