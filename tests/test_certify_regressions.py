"""The certifier regression corpus under tests/fixtures/repros/.

Each fixture is a replayable fuzz-IR case (``python -m repro.fuzz
--replay <file>`` works on all of them) pinned from a fuzzer find or a
hand-built boundary scenario.  For every fixture, both the default and
the recorded variant plan must certify AND the full differential
pipeline (with the certify oracle enabled) must pass — so the corpus
guards the certifier and the engine at once.

The PR3 acceptance test resurrects the historical LEFT OUTER
equivalence-merge bug and requires the whole refutation pipeline to
work: static refutation, counterexample synthesis, demonstrable
divergence of that counterexample on the naive oracle, and a saved
repro carrying the refutation payload.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from helpers import buggy_left_outer_local_join
from repro.fuzz import ir
from repro.fuzz.certify import confirm_refutation, replay_diverges
from repro.fuzz.runner import run_case
from repro.partitioning import partition_database
from repro.query.certify import certify
from repro.query.executor import Executor
from repro.query.rewrite import Rewriter

REPROS = Path(__file__).parent / "fixtures" / "repros"

FIXTURES = [
    "pr3_left_outer_null_group.json",
    "null_join_keys_pref.json",
    "pref_duplicates_left_outer.json",
    "semi_distinct_shuffle.json",
    "all_null_aggregates.json",
]


def load(name: str) -> dict:
    return ir.load_case(str(REPROS / name))


def build_partitioned(case: dict):
    database = ir.build_database(case)
    config = ir.build_config(case)
    config.validate(database.schema)
    return partition_database(database, config)


def test_corpus_is_complete():
    assert sorted(path.name for path in REPROS.glob("*.json")) == sorted(
        FIXTURES
    )


@pytest.mark.parametrize("name", FIXTURES)
def test_fixture_plans_certify(name):
    """Default and recorded-variant plans of every fixture certify."""
    case = load(name)
    partitioned = build_partitioned(case)
    variant = case.get("variant") or {}
    executors = [
        ("default", Executor(partitioned)),
        (
            "variant",
            Executor(
                partitioned,
                optimizations=bool(variant.get("optimizations", True)),
                locality=bool(variant.get("locality", True)),
                predicate_transfer=bool(
                    variant.get("predicate_transfer", False)
                ),
            ),
        ),
    ]
    for index, query in enumerate(case["queries"]):
        for label, executor in executors:
            verdict = certify(
                executor.annotate(ir.build_plan(query)), partitioned
            )
            assert verdict.certified, (
                f"{name} query {index} {label}: {verdict.render()}"
            )


@pytest.mark.parametrize("name", FIXTURES)
def test_fixture_passes_differential_pipeline(name):
    """Replay through run_case with the certify oracle switched on."""
    divergence = run_case(
        load(name), backends=("serial", "thread"), check_certify=True
    )
    assert divergence is None, divergence.describe()


def test_resurrected_bug_refutation_counterexample_diverges(monkeypatch):
    """Acceptance: the refuted PR3 plan's counterexample really diverges.

    With the equivalence-merge bug patched back into the rewriter, the
    certifier must refute the plan, the counterexample synthesizer must
    find a database on which the buggy plan's distributed result differs
    from the naive single-node oracle, and run_case must classify the
    whole thing as ``certify_refuted`` with the counterexample attached.
    """
    case = load("pr3_left_outer_null_group.json")
    query = case["queries"][0]
    flags = dict(case["variant"])

    monkeypatch.setattr(Rewriter, "_local_join", buggy_left_outer_local_join())

    partitioned = build_partitioned(case)
    verdict = certify(
        Executor(partitioned).annotate(ir.build_plan(query)), partitioned
    )
    assert not verdict.certified
    assert verdict.refutation.check == "aggregate:local"

    counterexample = confirm_refutation(case, query, flags)
    assert counterexample is not None, (
        "no diverging counterexample found for the refuted plan"
    )
    assert replay_diverges(
        counterexample, counterexample["queries"][0], counterexample["variant"]
    ), "the attached counterexample must diverge on the naive oracle"

    divergence = run_case(case, backends=("serial",), check_sqlite=False)
    assert divergence is not None
    assert divergence.kind == "certify_refuted"
    assert divergence.payload is not None
    assert divergence.payload["refutation"]["check"] == "aggregate:local"
    assert "counterexample" in divergence.payload


def test_counterexample_is_clean_on_fixed_rewriter():
    """The PR3 fixture (the historical counterexample) passes when fixed."""
    case = load("pr3_left_outer_null_group.json")
    assert not replay_diverges(
        case, case["queries"][0], case["variant"]
    ), "fixed rewriter must agree with the naive oracle on the PR3 case"
