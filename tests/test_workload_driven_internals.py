"""Internals of the WD algorithm: units, merging, routing."""

import pytest

from repro.design import (
    GraphEdge,
    QuerySpec,
    RedundancyEstimator,
    WorkloadDrivenDesigner,
)
from repro.design.workload_driven import _Unit, route_to_config
from repro.partitioning import (
    HashScheme,
    JoinPredicate,
    PartitioningConfig,
    PrefScheme,
)


def edge(a, ca, b, cb, weight=1):
    return GraphEdge(JoinPredicate.equi(a, ca, b, cb), weight)


class TestUnit:
    def test_merge_dedups_edges(self):
        e1 = edge("a", "x", "b", "y")
        e2 = edge("b", "y", "c", "z")
        first = _Unit(frozenset({"a", "b"}), (e1,), ("q1",))
        second = _Unit(frozenset({"b", "c"}), (e1, e2), ("q2",))
        merged = first.merged_with(second)
        assert len(merged.edges) == 2
        assert merged.queries == ("q1", "q2")
        assert merged.tables == frozenset({"a", "b", "c"})

    def test_acyclicity(self):
        e1 = edge("a", "x", "b", "y")
        e2 = edge("b", "y", "c", "z")
        e3 = edge("a", "x", "c", "z")
        tree = _Unit(frozenset({"a", "b", "c"}), (e1, e2), ("q",))
        cycle = _Unit(frozenset({"a", "b", "c"}), (e1, e2, e3), ("q",))
        assert tree.is_acyclic()
        assert not cycle.is_acyclic()

    def test_containment(self):
        e1 = edge("a", "x", "b", "y")
        e2 = edge("b", "y", "c", "z")
        small = _Unit(frozenset({"a", "b"}), (e1,), ("q1",))
        big = _Unit(frozenset({"a", "b", "c"}), (e1, e2), ("q2",))
        assert big.contains(small)
        assert not small.contains(big)


class TestMergePhases:
    def test_identical_queries_collapse(self, shop_db):
        predicate = JoinPredicate.equi("lineitem", "orderkey", "orders", "orderkey")
        workload = [
            QuerySpec.make(f"q{i}", [predicate]) for i in range(5)
        ]
        result = WorkloadDrivenDesigner(shop_db, 4).design(workload)
        assert len(result.fragments) == 1
        assert len(result.fragments[0].queries) == 5

    def test_disjoint_queries_may_stay_separate(self, shop_db):
        workload = [
            QuerySpec.make(
                "q_lo",
                [JoinPredicate.equi("lineitem", "orderkey", "orders", "orderkey")],
            ),
            QuerySpec.make(
                "q_cn",
                [JoinPredicate.equi("customer", "nationkey", "nation", "nationkey")],
            ),
        ]
        result = WorkloadDrivenDesigner(shop_db, 4).design(workload)
        # Sharing no tables, a merge is possible but only taken when the
        # estimate shrinks; either way both queries stay fully local.
        assert result.data_locality == pytest.approx(1.0)
        names = {q for f in result.fragments for q in f.queries}
        assert names == {"q_lo", "q_cn"}

    def test_conflicting_cycles_stay_separate(self, shop_db):
        # Two queries whose union of MASTs would be cyclic must not merge.
        workload = [
            QuerySpec.make(
                "q1",
                [
                    JoinPredicate.equi("lineitem", "orderkey", "orders", "orderkey"),
                    JoinPredicate.equi("orders", "custkey", "customer", "custkey"),
                ],
            ),
            QuerySpec.make(
                "q2",
                [
                    JoinPredicate.equi("lineitem", "linekey", "customer", "custkey"),
                    JoinPredicate.equi("customer", "custkey", "orders", "custkey"),
                ],
            ),
        ]
        result = WorkloadDrivenDesigner(shop_db, 4).design(workload)
        for fragment in result.fragments:
            graph_tables = {t: 1 for t in fragment.tables}
            from repro.design.graph import SchemaGraph

            assert SchemaGraph(graph_tables, fragment.edges).is_acyclic()


class TestRouting:
    def make_configs(self):
        first = PartitioningConfig(4)
        first.add("orders", HashScheme(("orderkey",), 4))
        first.add(
            "customer",
            PrefScheme(
                "orders",
                JoinPredicate.equi("customer", "custkey", "orders", "custkey"),
            ),
        )
        second = PartitioningConfig(4)
        second.add("customer", HashScheme(("custkey",), 4))
        return [first, second]

    def test_routes_to_covering_config(self, shop_db):
        estimator = RedundancyEstimator(shop_db, 4)
        configs = self.make_configs()
        assert route_to_config({"orders", "customer"}, configs, estimator) == 0

    def test_prefers_minimal_redundancy(self, shop_db):
        estimator = RedundancyEstimator(shop_db, 4)
        configs = self.make_configs()
        # customer alone: config 1 stores it duplicate-free.
        assert route_to_config({"customer"}, configs, estimator) == 1

    def test_uncovered_tables_unroutable(self, shop_db):
        estimator = RedundancyEstimator(shop_db, 4)
        configs = self.make_configs()
        assert route_to_config({"item"}, configs, estimator) is None

    def test_replicated_tables_ignored(self, shop_db):
        estimator = RedundancyEstimator(shop_db, 4)
        configs = self.make_configs()
        assert (
            route_to_config(
                {"customer", "nation"}, configs, estimator, replicated=["nation"]
            )
            == 1
        )
