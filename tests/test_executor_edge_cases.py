"""Executor edge cases: self-joins, gathered inputs, empty partitions."""

import pytest

from helpers import (
    all_hashed_config,
    assert_same_rows,
    pref_chain_config,
    ref_chain_config,
    shop_database,
)
from repro.partitioning import partition_database
from repro.query import Executor, LocalExecutor, Query
from repro.query.expressions import col, lit


@pytest.fixture(scope="module")
def database():
    return shop_database(seed=21)


CONFIGS = [all_hashed_config, pref_chain_config, ref_chain_config]


@pytest.mark.parametrize("config_builder", CONFIGS)
def test_self_join_with_aliases(database, config_builder):
    """Two aliases of the same table join locally under co-placement."""
    plan = (
        Query.scan("orders", alias="o1")
        .join(
            Query.scan("orders", alias="o2"),
            on=[("o1.orderkey", "o2.orderkey")],
        )
        .aggregate(aggregates=[("count", None, "n")])
        .plan()
    )
    partitioned = partition_database(database, config_builder(4))
    assert_same_rows(
        Executor(partitioned).execute(plan).rows,
        LocalExecutor(database).execute(plan).rows,
    )


@pytest.mark.parametrize("config_builder", CONFIGS)
def test_join_against_aggregated_subplan(database, config_builder):
    """A join whose right side is an aggregate result (Q15 pattern)."""
    totals = (
        Query.scan("orders", alias="o")
        .aggregate(
            group_by=["o.custkey"],
            aggregates=[("sum", col("o.total"), "spend")],
        )
    )
    plan = (
        Query.scan("customer", alias="c")
        .join(totals, on=[("c.custkey", "o.custkey")])
        .order_by([("spend", False), ("c.custkey", True)], limit=5)
        .plan()
    )
    partitioned = partition_database(database, config_builder(4))
    assert_same_rows(
        Executor(partitioned).execute(plan).rows,
        LocalExecutor(database).execute(plan).rows,
    )


def test_join_with_scalar_aggregate_side(database):
    """Joining against a GATHERED scalar-aggregate relation."""
    average = Query.scan("orders", alias="o").aggregate(
        aggregates=[("count", None, "total_orders")]
    )
    plan = (
        Query.scan("nation", alias="n")
        .cross_join(average)
        .aggregate(aggregates=[("max", col("total_orders"), "m")])
        .plan()
    )
    for config_builder in CONFIGS:
        partitioned = partition_database(database, config_builder(3))
        assert_same_rows(
            Executor(partitioned).execute(plan).rows,
            LocalExecutor(database).execute(plan).rows,
        )


def test_empty_filter_result_everywhere(database):
    plan = (
        Query.scan("lineitem", alias="l")
        .where(col("l.qty") > lit(10_000))
        .join(Query.scan("orders", alias="o"), on=[("l.orderkey", "o.orderkey")])
        .aggregate(aggregates=[("count", None, "n"), ("min", col("l.qty"), "m")])
        .plan()
    )
    partitioned = partition_database(database, pref_chain_config(4))
    result = Executor(partitioned).execute(plan)
    assert result.rows == [(0, None)]


def test_single_partition_cluster(database):
    """n = 1 degenerates gracefully (everything is local)."""
    partitioned = partition_database(database, pref_chain_config(1))
    plan = (
        Query.scan("customer", alias="c")
        .join(Query.scan("orders", alias="o"), on=[("c.custkey", "o.custkey")])
        .aggregate(aggregates=[("count", None, "n")])
        .plan()
    )
    assert_same_rows(
        Executor(partitioned).execute(plan).rows,
        LocalExecutor(database).execute(plan).rows,
    )


def test_overlapping_column_names_rejected(database):
    from repro.errors import PlanningError

    plan = (
        Query.scan("orders")
        .join(Query.scan("orders"), on=[("orderkey", "orderkey")])
        .plan()
    )
    partitioned = partition_database(database, pref_chain_config(4))
    with pytest.raises(PlanningError):
        Executor(partitioned).execute(plan)


def test_semi_join_of_semi_join(database):
    """Chained semi joins (Q20 pattern)."""
    big_orders = Query.scan("orders", alias="o").where(col("o.total") > lit(50.0))
    busy_lines = Query.scan("lineitem", alias="l").semi_join(
        big_orders, on=[("l.orderkey", "o.orderkey")]
    )
    plan = (
        Query.scan("item", alias="i")
        .semi_join(busy_lines, on=[("i.itemkey", "l.itemkey")])
        .aggregate(aggregates=[("count", None, "n")])
        .plan()
    )
    for config_builder in CONFIGS:
        partitioned = partition_database(database, config_builder(4))
        for optimizations in (True, False):
            assert_same_rows(
                Executor(partitioned, optimizations=optimizations)
                .execute(plan)
                .rows,
                LocalExecutor(database).execute(plan).rows,
            )


def test_in_list_and_null_filters_distributed(database):
    from repro.query.expressions import InList, IsNull

    plan = (
        Query.scan("customer", alias="c")
        .left_join(
            Query.scan("orders", alias="o").where(col("o.total") > lit(80.0)),
            on=[("c.custkey", "o.custkey")],
        )
        .where(IsNull(col("o.orderkey")))
        .aggregate(aggregates=[("count", None, "n")])
        .plan()
    )
    partitioned = partition_database(database, pref_chain_config(4))
    assert_same_rows(
        Executor(partitioned).execute(plan).rows,
        LocalExecutor(database).execute(plan).rows,
    )
    plan2 = (
        Query.scan("lineitem", alias="l")
        .where(InList(col("l.itemkey"), (1, 2, 3)))
        .aggregate(group_by=["l.itemkey"], aggregates=[("count", None, "n")])
        .order_by(["l.itemkey"])
        .plan()
    )
    assert_same_rows(
        Executor(partitioned).execute(plan2).rows,
        LocalExecutor(database).execute(plan2).rows,
    )


def test_anti_join_with_replicated_left_counts_once(database):
    """Regression: a replicated preserved side must not multiply results."""
    plan = (
        Query.scan("nation", alias="n")
        .anti_join(
            Query.scan("customer", alias="c"),
            on=[("n.nationkey", "c.nationkey")],
        )
        .aggregate(aggregates=[("count", None, "cnt")])
        .plan()
    )
    for config_builder in CONFIGS:
        partitioned = partition_database(database, config_builder(3))
        for optimizations in (True, False):
            assert_same_rows(
                Executor(partitioned, optimizations=optimizations)
                .execute(plan)
                .rows,
                LocalExecutor(database).execute(plan).rows,
            )


def test_cross_join_with_replicated_kept_side(database):
    """Regression: replicated side kept locally in a broadcast join."""
    plan = (
        Query.scan("nation", alias="n")
        .cross_join(Query.scan("item", alias="i"))
        .aggregate(aggregates=[("count", None, "cnt")])
        .plan()
    )
    for config_builder in CONFIGS:
        partitioned = partition_database(database, config_builder(3))
        assert_same_rows(
            Executor(partitioned).execute(plan).rows,
            LocalExecutor(database).execute(plan).rows,
        )


@pytest.mark.parametrize("kind", ["semi", "anti"])
def test_keyed_semi_anti_join_applies_residual(database, kind):
    """Regression: the keyed semi/anti hash path tested key membership
    only, silently dropping the residual predicate — a customer with any
    order at all passed a semi join that should require a *big* order.
    Checked against plain-Python ground truth and the local reference
    executor, under every config and with the hasS rewrites on and off
    (the partner-filter bitmap cannot express residuals and must not
    fire)."""
    from repro.query.plan import JoinKind

    join_kind = JoinKind.SEMI if kind == "semi" else JoinKind.ANTI
    plan = (
        Query.scan("customer", alias="c")
        .join(
            Query.scan("orders", alias="o"),
            on=[("c.custkey", "o.custkey")],
            kind=join_kind,
            residual=(col("o.total") > lit(50.0)),
        )
        .order_by(["c.custkey"])
        .plan()
    )
    # Ground truth straight from the base tables.
    big_spenders = {
        custkey
        for _okey, custkey, total in database.table("orders").rows
        if total > 50.0
    }
    expected = [
        row
        for row in database.table("customer").rows
        if (row[0] in big_spenders) == (kind == "semi")
    ]
    assert expected, "ground truth should be non-trivial"
    assert len(expected) != database.table("customer").row_count, (
        "residual should actually restrict the match set"
    )
    assert_same_rows(LocalExecutor(database).execute(plan).rows, expected)
    for config_builder in CONFIGS:
        partitioned = partition_database(database, config_builder(4))
        for optimizations in (True, False):
            assert_same_rows(
                Executor(partitioned, optimizations=optimizations)
                .execute(plan)
                .rows,
                expected,
            )
