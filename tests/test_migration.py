"""Tests for re-partitioning migration plans."""

import pytest

from helpers import all_hashed_config, pref_chain_config, ref_chain_config
from repro.partitioning import partition_database, plan_migration


class TestPlanMigration:
    def test_identity_migration_moves_nothing(self, shop_db):
        config = pref_chain_config(4)
        plan = plan_migration(shop_db, config, config)
        assert plan.copies_moved == 0
        assert plan.moved_fraction == 0.0
        assert plan.bytes_moved == 0

    def test_full_switch_moves_data(self, shop_db):
        plan = plan_migration(
            shop_db, all_hashed_config(4), pref_chain_config(4)
        )
        assert plan.copies_moved > 0
        assert 0 < plan.moved_fraction <= 1
        assert plan.simulated_seconds() > 0

    def test_kept_plus_moved_equals_target(self, shop_db):
        plan = plan_migration(
            shop_db, ref_chain_config(4), pref_chain_config(4)
        )
        for migration in plan.tables.values():
            assert (
                migration.copies_kept + migration.copies_moved
                == migration.copies_after
            )
            assert migration.copies_dropped >= 0

    def test_new_table_is_fully_loaded(self, shop_db):
        from repro.partitioning import HashScheme, PartitioningConfig

        old = PartitioningConfig(4)
        old.add("customer", HashScheme(("custkey",), 4))
        new = PartitioningConfig(4)
        new.add("customer", HashScheme(("custkey",), 4))
        new.add("orders", HashScheme(("orderkey",), 4))
        plan = plan_migration(shop_db, old, new)
        orders = plan.tables["orders"]
        assert orders.copies_before == 0
        assert orders.copies_moved == orders.copies_after

    def test_dropped_table_counts_drops(self, shop_db):
        from repro.partitioning import HashScheme, PartitioningConfig

        old = PartitioningConfig(4)
        old.add("customer", HashScheme(("custkey",), 4))
        new = PartitioningConfig(4)
        plan = plan_migration(shop_db, old, new)
        customer = plan.tables["customer"]
        assert customer.copies_after == 0
        assert customer.copies_dropped == customer.copies_before

    def test_cluster_growth_matches_shared_prefix(self, shop_db):
        # Regression: unequal cluster sizes used to be rejected outright.
        # Growing 4 -> 6 matches placements over nodes 0..3; copies landing
        # on the two new nodes all move.
        plan = plan_migration(
            shop_db, all_hashed_config(4), all_hashed_config(6)
        )
        assert plan.copies_moved > 0
        for migration in plan.tables.values():
            assert (
                migration.copies_kept + migration.copies_moved
                == migration.copies_after
            )
            assert migration.copies_dropped >= 0
            assert len(migration.bytes_moved_by_node) == 6
        new_dp = partition_database(shop_db, all_hashed_config(6))
        grown_rows = sum(
            sum(
                len(table.partitions[node].rows)
                for table in new_dp.tables.values()
            )
            for node in (4, 5)
        )
        # Everything on the new nodes had to be shipped there.
        assert plan.copies_moved >= grown_rows > 0

    def test_cluster_shrink_matches_shared_prefix(self, shop_db):
        plan = plan_migration(
            shop_db, all_hashed_config(4), all_hashed_config(2)
        )
        assert plan.copies_moved > 0
        for migration in plan.tables.values():
            assert (
                migration.copies_kept + migration.copies_moved
                == migration.copies_after
            )
            # Old copies on removed nodes 2..3 are dropped or re-shipped.
            assert migration.copies_dropped > 0
            assert len(migration.bytes_moved_by_node) == 2

    def test_serialized_seconds_pinned_at_parallelism_one(self, shop_db):
        # The historical single-link model is the explicit parallelism=1
        # case; the default models per-destination-node parallel ingest
        # and can only be faster.
        plan = plan_migration(
            shop_db, all_hashed_config(4), pref_chain_config(4)
        )
        bandwidth = 300e6
        serialized = plan.simulated_seconds(
            network_bandwidth_bytes=bandwidth, parallelism=1
        )
        assert serialized == pytest.approx(plan.bytes_moved / bandwidth)
        parallel = plan.simulated_seconds(network_bandwidth_bytes=bandwidth)
        assert parallel <= serialized
        assert parallel == pytest.approx(
            max(plan.bytes_moved_by_node) / bandwidth
        )
        with pytest.raises(ValueError):
            plan.simulated_seconds(parallelism=0)

    def test_bytes_moved_by_node_sums_to_total(self, shop_db):
        plan = plan_migration(
            shop_db, all_hashed_config(4), pref_chain_config(4)
        )
        assert sum(plan.bytes_moved_by_node) == plan.bytes_moved

    def test_reuses_prematerialised_databases(self, shop_db):
        old = all_hashed_config(4)
        new = pref_chain_config(4)
        old_dp = partition_database(shop_db, old)
        new_dp = partition_database(shop_db, new)
        plan = plan_migration(
            shop_db, old, new, old_partitioned=old_dp, new_partitioned=new_dp
        )
        assert plan.copies_moved > 0
