"""Tests for the baseline designs and the locality checker."""

import pytest

from repro.design import (
    SchemaGraph,
    all_hashed,
    all_replicated,
    classical_individual_stars,
    classical_partitioning,
    config_data_locality,
    edge_satisfied,
    sd_individual_stars,
    split_into_stars,
)
from repro.partitioning import SchemeKind, partition_database
from repro.workloads.tpcds import FACT_TABLES


class TestClassicalPartitioning:
    def test_cohashes_two_biggest_connected(self, shop_db):
        config = classical_partitioning(shop_db, 4)
        # lineitem (200) is biggest; orders (60) its biggest FK partner.
        assert config.scheme_of("lineitem").kind is SchemeKind.HASH
        assert config.scheme_of("orders").kind is SchemeKind.HASH
        assert config.scheme_of("lineitem").columns == ("orderkey",)
        assert config.scheme_of("orders").columns == ("orderkey",)
        for table in ("customer", "item", "nation"):
            assert config.scheme_of(table).kind is SchemeKind.REPLICATED

    def test_perfect_locality(self, shop_db):
        graph = SchemaGraph.from_schema(shop_db.schema, shop_db.table_sizes())
        config = classical_partitioning(shop_db, 4)
        assert config_data_locality(graph, config) == pytest.approx(1.0)


class TestAllHashedAllReplicated:
    def test_all_hashed_zero_locality(self, shop_db):
        graph = SchemaGraph.from_schema(shop_db.schema, shop_db.table_sizes())
        config = all_hashed(shop_db, 4)
        assert config_data_locality(graph, config) == pytest.approx(0.0)
        partitioned = partition_database(shop_db, config)
        assert partitioned.data_redundancy() == pytest.approx(0.0)

    def test_all_replicated_full_redundancy(self, shop_db):
        graph = SchemaGraph.from_schema(shop_db.schema, shop_db.table_sizes())
        config = all_replicated(shop_db, 4)
        assert config_data_locality(graph, config) == pytest.approx(1.0)
        partitioned = partition_database(shop_db, config)
        assert partitioned.data_redundancy() == pytest.approx(3.0)


class TestEdgeSatisfied:
    def test_pref_edge_satisfied(self, shop_db):
        from helpers import pref_chain_config

        graph = SchemaGraph.from_schema(shop_db.schema, shop_db.table_sizes())
        config = pref_chain_config(4)
        by_tables = {frozenset(e.tables): e for e in graph.edges}
        assert edge_satisfied(by_tables[frozenset({"lineitem", "orders"})], config)
        assert edge_satisfied(by_tables[frozenset({"orders", "customer"})], config)
        assert edge_satisfied(by_tables[frozenset({"customer", "nation"})], config)

    def test_unrelated_hash_edge_not_satisfied(self, shop_db):
        from helpers import all_hashed_config

        graph = SchemaGraph.from_schema(shop_db.schema, shop_db.table_sizes())
        config = all_hashed_config(4)
        for edge in graph.edges:
            assert not edge_satisfied(edge, config)


class TestIndividualStars:
    def test_split_into_stars_follows_outgoing_fks(self, tiny_tpcds_schema):
        stars = split_into_stars(tiny_tpcds_schema, FACT_TABLES)
        assert set(stars) == set(FACT_TABLES)
        assert "item" in stars["store_sales"]
        assert "date_dim" in stars["inventory"]
        # returns stars include their sales table (composite FK).
        assert "store_sales" in stars["store_returns"]

    def test_cp_individual_stars_builds_config_per_star(self, tiny_tpcds):
        design = classical_individual_stars(tiny_tpcds, 4, FACT_TABLES)
        assert set(design.stars) == set(FACT_TABLES)
        for fact, config in design.stars.items():
            assert fact in config.tables

    def test_sd_individual_stars_valid(self, tiny_tpcds):
        design = sd_individual_stars(
            tiny_tpcds, 4, ["store_sales", "inventory"]
        )
        for fact, config in design.stars.items():
            star_schema = tiny_tpcds.schema.restricted_to(
                design.star_tables[fact]
            )
            config.validate(star_schema)


import pytest  # noqa: E402


@pytest.fixture(scope="module")
def tiny_tpcds():
    from repro.workloads.tpcds import generate_tpcds

    return generate_tpcds(scale_factor=0.0005, seed=1)


@pytest.fixture(scope="module")
def tiny_tpcds_schema(tiny_tpcds):
    return tiny_tpcds.schema
