"""Property-based tests: migration accounting and SQL round trips."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers import (
    all_hashed_config,
    assert_same_rows,
    pref_chain_config,
    ref_chain_config,
    shop_database,
)
from repro.partitioning import partition_database, plan_migration
from repro.query import Executor, LocalExecutor
from repro.sql import sql_to_plan

CONFIGS = [all_hashed_config, pref_chain_config, ref_chain_config]


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=300),
    old_index=st.integers(min_value=0, max_value=2),
    new_index=st.integers(min_value=0, max_value=2),
    n=st.integers(min_value=2, max_value=6),
)
def test_migration_accounting_invariants(seed, old_index, new_index, n):
    """kept + moved == target copies; identity migrations are free."""
    database = shop_database(seed=seed, customers=10, orders=25, lineitems=60)
    old_config = CONFIGS[old_index](n)
    new_config = CONFIGS[new_index](n)
    plan = plan_migration(database, old_config, new_config)
    for migration in plan.tables.values():
        assert migration.copies_kept + migration.copies_moved == migration.copies_after
        assert migration.copies_kept + migration.copies_dropped == migration.copies_before
        assert migration.copies_kept >= 0
    if old_index == new_index:
        assert plan.copies_moved == 0


AGG = st.sampled_from(
    ["COUNT(*) AS v", "SUM(o.total) AS v", "MIN(o.total) AS v", "MAX(o.total) AS v"]
)


@st.composite
def sql_queries(draw):
    agg = draw(AGG)
    group = draw(st.sampled_from(["", " GROUP BY o.custkey"]))
    threshold = draw(st.integers(min_value=0, max_value=100))
    join = draw(
        st.sampled_from(
            [
                "",
                " JOIN customer c ON o.custkey = c.custkey",
                " JOIN lineitem l ON o.orderkey = l.orderkey",
            ]
        )
    )
    select = f"SELECT {'o.custkey, ' if group else ''}{agg}"
    where = f" WHERE o.total >= {threshold}"
    order = " ORDER BY v DESC, custkey" if group else ""
    return f"{select} FROM orders o{join}{where}{group}{order}"


@settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(
    query=sql_queries(),
    seed=st.integers(min_value=0, max_value=200),
    config_index=st.integers(min_value=0, max_value=2),
    n=st.integers(min_value=1, max_value=6),
)
def test_random_sql_matches_reference(query, seed, config_index, n):
    database = shop_database(seed=seed, customers=10, orders=30, lineitems=60)
    plan = sql_to_plan(query, database.schema)
    partitioned = partition_database(database, CONFIGS[config_index](n))
    assert_same_rows(
        Executor(partitioned).execute(plan).rows,
        LocalExecutor(database).execute(plan).rows,
    )
