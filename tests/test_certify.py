"""The static parallel-correctness certifier (repro.query.certify).

Four angles:

* coverage — every plan the current rewriter emits for TPC-H (three
  partitioning configurations, both ablations, Bloom-decorated) and for
  join plans synthesized from the TPC-DS query graphs must certify;
* refutations — hand-corrupted plans (stripped dup governance, unknown
  placement claims, the resurrected LEFT OUTER equivalence-merge bug)
  must be refuted with the right check name;
* teeth — monkeypatching the ``check_partner`` / ``check_dup_bits``
  gatekeepers to grant everything must make those known-bad plans
  wrongly certify, proving each check is the one with bite;
* annotations — the rewriter's previously implicit soundness assumptions
  are pinned as explicit ``extra`` shapes the certifier consumes.
"""

from __future__ import annotations

import importlib
from dataclasses import replace
from pathlib import Path

import pytest

from helpers import (
    buggy_left_outer_local_join,
    pref_chain_config,
    shop_database,
)
from repro.design import SchemaDrivenDesigner
from repro.design.baselines import all_hashed
from repro.fuzz import ir
from repro.partitioning import partition_database
from repro.partitioning.config import PartitioningConfig
from repro.partitioning.scheme import PatchedPrefScheme, PrefScheme
from repro.query.certify import certify
from repro.query.executor import Executor
from repro.query.plan import (
    Aggregate,
    AggregateSpec,
    Join,
    JoinKind,
    PartnerFilter,
    Project,
    Scan,
)
from repro.query.rewrite import Rewriter
from repro.workloads import tpcds
from repro.workloads.tpch import ALL_QUERIES, SMALL_TABLES

certify_module = importlib.import_module("repro.query.certify")

NODES = 4
REPROS = Path(__file__).parent / "fixtures" / "repros"


# -- fixtures ---------------------------------------------------------------


@pytest.fixture(scope="module")
def tpch_configs(small_tpch):
    """The three certification configs: all-hashed, PREF, patched-PREF."""
    pref = SchemaDrivenDesigner(small_tpch, NODES).design(
        replicate=SMALL_TABLES
    ).config
    referenced = {
        scheme.referenced_table
        for _table, scheme in pref
        if isinstance(scheme, PrefScheme)
    }
    patched = PartitioningConfig(pref.partition_count)
    for table, scheme in pref:
        if isinstance(scheme, PrefScheme) and table not in referenced:
            scheme = PatchedPrefScheme(
                scheme.referenced_table, scheme.predicate, max_copies=1
            )
        patched.add(table, scheme)
    patched.validate(small_tpch.schema)
    return {
        "hashed": all_hashed(small_tpch, NODES),
        "pref": pref,
        "patched": patched,
    }


@pytest.fixture(scope="module")
def tpch_partitioned(small_tpch, tpch_configs):
    return {
        name: partition_database(small_tpch, config)
        for name, config in tpch_configs.items()
    }


@pytest.fixture(scope="module")
def shop_pref_partitioned():
    """Shop data under the PREF chain: orders carries real duplicates."""
    database = shop_database(seed=7)
    return partition_database(database, pref_chain_config(NODES))


def certify_or_fail(annotated, partitioned, context=""):
    verdict = certify(annotated, partitioned)
    assert verdict.certified, f"{context}: {verdict.render()}"
    return verdict


# -- coverage: TPC-H --------------------------------------------------------


@pytest.mark.parametrize("config_name", ["hashed", "pref", "patched"])
def test_all_tpch_plans_certify(tpch_partitioned, config_name):
    partitioned = tpch_partitioned[config_name]
    rewriter = Rewriter(partitioned)
    for name, build in sorted(ALL_QUERIES.items()):
        certify_or_fail(
            rewriter.rewrite(build()), partitioned, f"{config_name} {name}"
        )


@pytest.mark.parametrize(
    "flags",
    [
        {"locality": False},
        {"optimizations": False},
        {"optimizations": False, "locality": False},
    ],
)
def test_tpch_ablation_plans_certify(tpch_partitioned, flags):
    """The shuffle-everything / no-optimization rewrites certify too."""
    partitioned = tpch_partitioned["pref"]
    rewriter = Rewriter(partitioned, **flags)
    for name, build in sorted(ALL_QUERIES.items()):
        certify_or_fail(rewriter.rewrite(build()), partitioned, f"{flags} {name}")


def test_tpch_bloom_decorated_plans_certify(tpch_partitioned):
    """Predicate-transfer probes do not disturb placement derivation."""
    partitioned = tpch_partitioned["pref"]
    executor = Executor(partitioned, predicate_transfer=True)
    for name in ("Q3", "Q5", "Q10", "Q18"):
        certify_or_fail(
            executor.annotate(ALL_QUERIES[name]()),
            partitioned,
            f"bloom {name}",
        )


def test_certificate_renders_every_node(tpch_partitioned):
    """The certificate is an explain-shaped tree: one constraint per node."""
    partitioned = tpch_partitioned["pref"]
    annotated = Rewriter(partitioned).rewrite(ALL_QUERIES["Q3"]())
    verdict = certify(annotated, partitioned)
    assert verdict.certified
    nodes = sum(1 for _ in annotated.node.walk())
    assert len(verdict.certificate.lines) == nodes
    rendered = verdict.render()
    assert "::" in rendered
    # Q3 under PREF rides the chain: a case-2 join against orders and a
    # hash co-location claim must both show up in the constraints.
    assert "pref→orders" in rendered or "case2" in rendered
    assert "hash[" in rendered


# -- coverage: TPC-DS -------------------------------------------------------


def _block_plan(block):
    """Left-deep spanning-tree join over one TPC-DS SPJA block."""
    placed: list[str] = []
    plan = None
    pending = [tpcds.EDGES[shorthand] for shorthand in block]
    while pending:
        progressed = False
        for edge in list(pending):
            r, s = edge.left_table, edge.right_table
            pairs = tuple(
                (f"{r}.{rc}", f"{s}.{sc}")
                for rc, sc in zip(edge.left_columns, edge.right_columns)
            )
            if plan is None:
                plan = Join(Scan(r), Scan(s), on=pairs)
                placed += [r, s]
            elif r in placed and s in placed:
                pass  # non-tree edge; the spanning tree already connects it
            elif r in placed:
                plan = Join(plan, Scan(s), on=pairs)
                placed.append(s)
            elif s in placed:
                plan = Join(plan, Scan(r), on=tuple((b, a) for a, b in pairs))
                placed.append(r)
            else:
                continue
            pending.remove(edge)
            progressed = True
        if not progressed:
            break
    if plan is None:
        return None
    return Aggregate(plan, (), (AggregateSpec("count", None, "n"),))


def test_all_tpcds_block_plans_certify():
    """Join plans from all 99 TPC-DS query graphs certify under SD + hashed."""
    database = tpcds.generate_tpcds(scale_factor=0.0005, seed=4)
    configs = {
        "sd": SchemaDrivenDesigner(database, NODES).design(
            replicate=tpcds.SMALL_TABLES
        ).config,
        "hashed": all_hashed(database, NODES),
    }
    plans = [
        (number, block)
        for number, blocks in sorted(tpcds.QUERY_BLOCKS.items())
        for block in blocks
        if block
    ]
    assert len(plans) > 100
    for config_name, config in configs.items():
        partitioned = partition_database(database, config)
        rewriter = Rewriter(partitioned)
        for number, block in plans:
            plan = _block_plan(block)
            if plan is None:
                continue
            certify_or_fail(
                rewriter.rewrite(plan),
                partitioned,
                f"tpcds {config_name} q{number} {block}",
            )


# -- refutations ------------------------------------------------------------


def test_stripped_dup_governance_is_refuted(shop_pref_partitioned):
    """Dropping the declared dedup from a duplicate-bearing result refutes.

    Orders is PREF-partitioned on lineitem's non-unique orderkey, so its
    scan carries governing duplicate bits; a plan that presents that
    result without declaring the dedup claims duplicates reach the
    consumer unseen.
    """
    partitioned = shop_pref_partitioned
    annotated = Rewriter(partitioned).rewrite(Scan("orders", "o"))
    assert annotated.props.governing, "orders must carry governing dup bits"
    certify_or_fail(annotated, partitioned, "intact scan")
    corrupt = replace(
        annotated, props=replace(annotated.props, governing=())
    )
    verdict = certify(corrupt, partitioned)
    assert not verdict.certified
    assert verdict.refutation.check == "dup_bits"
    assert "duplicates" in verdict.refutation.reason


def test_unknown_placement_claim_is_refuted(shop_pref_partitioned):
    """The gatekeeper fails closed on claims it has no checker for."""
    partitioned = shop_pref_partitioned
    annotated = Rewriter(partitioned).rewrite(
        Join(
            Scan("orders", "o"),
            Scan("lineitem", "l"),
            on=(("o.orderkey", "l.orderkey"),),
        )
    )
    assert annotated.extra.get("case") == "case2"
    annotated.extra["case"] = "case9"
    verdict = certify(annotated, partitioned)
    assert not verdict.certified
    assert "unknown" in verdict.refutation.reason
    assert "case9" in verdict.refutation.reason


def test_resurrected_left_outer_bug_is_refuted(monkeypatch, shop_pref_partitioned):
    """The PR3 LEFT OUTER equivalence-merge bug refutes at aggregate:local."""
    case = ir.load_case(str(REPROS / "pr3_left_outer_null_group.json"))
    database = ir.build_database(case)
    config = ir.build_config(case)
    partitioned = partition_database(database, config)
    plan = ir.build_plan(case["queries"][0])

    certify_or_fail(
        Rewriter(partitioned).rewrite(plan), partitioned, "fixed rewriter"
    )
    monkeypatch.setattr(Rewriter, "_local_join", buggy_left_outer_local_join())
    verdict = certify(Rewriter(partitioned).rewrite(plan), partitioned)
    assert not verdict.certified
    assert verdict.refutation.check == "aggregate:local"
    assert "span partitions" in verdict.refutation.reason


# -- teeth: each gatekeeper is the one with bite ----------------------------


def test_without_partner_checks_the_left_outer_bug_certifies(monkeypatch):
    """Skipping check_partner wrongly certifies the resurrected PR3 plan."""
    case = ir.load_case(str(REPROS / "pr3_left_outer_null_group.json"))
    database = ir.build_database(case)
    partitioned = partition_database(database, ir.build_config(case))
    plan = ir.build_plan(case["queries"][0])
    monkeypatch.setattr(Rewriter, "_local_join", buggy_left_outer_local_join())
    buggy = Rewriter(partitioned).rewrite(plan)
    assert not certify(buggy, partitioned).certified

    monkeypatch.setattr(certify_module, "check_partner", lambda *a, **k: None)
    assert certify(buggy, partitioned).certified, (
        "with check_partner disabled the buggy plan must (wrongly) "
        "certify — the placement gatekeeper is what rejects it"
    )


def test_without_dup_bit_checks_unguarded_duplicates_certify(
    monkeypatch, shop_pref_partitioned
):
    """Skipping check_dup_bits wrongly certifies unguarded PREF duplicates.

    The corrupted plan hands out rows of a PREF table whose NULL-key and
    multi-partner copies are governed by hidden dup bits, without any
    declared dedup — only the redundancy gatekeeper rejects it.
    """
    partitioned = shop_pref_partitioned
    annotated = Rewriter(partitioned).rewrite(Scan("orders", "o"))
    corrupt = replace(
        annotated, props=replace(annotated.props, governing=())
    )
    assert not certify(corrupt, partitioned).certified

    monkeypatch.setattr(certify_module, "check_dup_bits", lambda *a, **k: None)
    assert certify(corrupt, partitioned).certified, (
        "with check_dup_bits disabled the duplicate-leaking plan must "
        "(wrongly) certify — the redundancy gatekeeper is what rejects it"
    )


# -- pinned annotation shapes (the rewriter's stated assumptions) -----------


def test_case2_join_annotates_referenced_side(tpch_partitioned):
    """Every PREF-local join states which input is the referenced one."""
    partitioned = tpch_partitioned["pref"]
    rewriter = Rewriter(partitioned)
    seen = 0

    def walk(annotated):
        nonlocal seen
        if annotated.extra.get("case") in ("case2", "case3"):
            assert annotated.extra["referenced_side"] in ("left", "right")
            seen += 1
        for child in annotated.inputs:
            walk(child)

    for name, build in sorted(ALL_QUERIES.items()):
        walk(rewriter.rewrite(build()))
    assert seen > 0, "no PREF-local joins found in the TPC-H plans"


def test_referencing_preserved_join_states_pristine_assumption(
    shop_pref_partitioned,
):
    """Non-inner case-2 joins preserving the referencing side carry
    extra.assume.pristine naming the referenced table."""
    partitioned = shop_pref_partitioned
    annotated = Rewriter(partitioned).rewrite(
        Join(
            Scan("orders", "o"),
            Scan("lineitem", "l"),
            on=(("o.orderkey", "l.orderkey"),),
            kind=JoinKind.LEFT_OUTER,
        )
    )
    assert annotated.extra == {
        "strategy": "local",
        "case": "case2",
        "referenced_side": "right",
        "assume": {"pristine": "lineitem"},
    }
    # The certifier independently derives that the lineitem scan is the
    # complete base table, so the stated assumption is corroborated
    # rather than listed; certification must succeed either way.
    certify_or_fail(annotated, partitioned, "left outer case2")


def test_partner_filter_states_pristine_assumption(shop_pref_partitioned):
    """The hasS bitmap rewrite states build-side completeness explicitly."""
    partitioned = shop_pref_partitioned
    annotated = Rewriter(partitioned).rewrite(
        Join(
            Scan("orders", "o"),
            Scan("lineitem", "l"),
            on=(("o.orderkey", "l.orderkey"),),
            kind=JoinKind.SEMI,
        )
    )
    assert isinstance(annotated.node, PartnerFilter)
    assert annotated.extra == {
        "strategy": "partner_filter",
        "assume": {"pristine": "lineitem"},
    }
    verdict = certify_or_fail(annotated, partitioned, "partner filter")
    assert any("hasS bitmap" in a for a in verdict.certificate.assumptions)


def test_distinct_keys_projection_states_membership_only():
    """The semi/anti build-side distinct-keys reduction is annotated as
    membership-only (local dedup may keep cross-partition key copies)."""
    case = ir.load_case(str(REPROS / "semi_distinct_shuffle.json"))
    database = ir.build_database(case)
    partitioned = partition_database(database, ir.build_config(case))
    annotated = Executor(partitioned).annotate(
        ir.build_plan(case["queries"][0])
    )

    projections = []

    def walk(node):
        if isinstance(node.node, Project) and node.extra.get("distinct"):
            projections.append(node.extra)
        for child in node.inputs:
            walk(child)

    walk(annotated)
    assert projections == [
        {"distinct": "local", "assume": {"membership_only": True}}
    ]
    verdict = certify_or_fail(annotated, partitioned, "distinct keys")
    assert any("membership" in a for a in verdict.certificate.assumptions)
