"""SQL front end: lexer, parser, planner, end-to-end execution."""

import pytest

from helpers import assert_same_rows, pref_chain_config
from repro.errors import SqlError, SqlSyntaxError
from repro.partitioning import partition_database
from repro.query import Executor, LocalExecutor
from repro.sql import parse_select, sql_to_plan, tokenize
from repro.sql.lexer import TokenType


class TestLexer:
    def test_keywords_and_identifiers(self):
        tokens = tokenize("SELECT foo FROM bar")
        assert [t.type for t in tokens[:-1]] == [
            TokenType.KEYWORD,
            TokenType.IDENTIFIER,
            TokenType.KEYWORD,
            TokenType.IDENTIFIER,
        ]
        assert tokens[0].value == "select"

    def test_numbers(self):
        tokens = tokenize("1 2.5 0.125")
        assert [t.value for t in tokens[:-1]] == ["1", "2.5", "0.125"]

    def test_strings(self):
        tokens = tokenize("'hello world'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "hello world"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_symbols(self):
        tokens = tokenize("a <= b <> c != d")
        symbols = [t.value for t in tokens[:-1] if t.type is TokenType.SYMBOL]
        assert symbols == ["<=", "<>", "!="]

    def test_qualified_names_tokenise(self):
        tokens = tokenize("t1.x")
        assert [t.value for t in tokens[:-1]] == ["t1", ".", "x"]

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT $")


class TestParser:
    def test_basic_select(self):
        statement = parse_select("SELECT a, b FROM t")
        assert len(statement.items) == 2
        assert statement.base.table == "t"

    def test_aggregates(self):
        statement = parse_select(
            "SELECT COUNT(*) AS n, SUM(x) AS s, COUNT(DISTINCT y) AS d FROM t"
        )
        funcs = [item.aggregate for item in statement.items]
        assert funcs == ["count", "sum", "count_distinct"]

    def test_joins(self):
        statement = parse_select(
            "SELECT * FROM a JOIN b ON a.x = b.y LEFT JOIN c ON b.z = c.w"
        )
        assert [j.kind for j in statement.joins] == ["inner", "left"]

    def test_join_requires_on(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("SELECT * FROM a JOIN b")

    def test_where_between_in_null(self):
        statement = parse_select(
            "SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b IN (1, 2) "
            "AND c IS NOT NULL"
        )
        assert statement.where is not None

    def test_group_having_order_limit(self):
        statement = parse_select(
            "SELECT a, COUNT(*) AS n FROM t GROUP BY a HAVING n > 1 "
            "ORDER BY n DESC, a LIMIT 10"
        )
        assert statement.group_by == ["a"]
        assert statement.having is not None
        assert statement.order_by[0].ascending is False
        assert statement.order_by[1].ascending is True
        assert statement.limit == 10

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("SELECT a FROM t banana!")

    def test_distinct(self):
        assert parse_select("SELECT DISTINCT a FROM t").distinct


class TestPlanner:
    def test_unknown_table_rejected(self, shop_db):
        with pytest.raises(SqlError):
            sql_to_plan("SELECT * FROM nonexistent", shop_db.schema)

    def test_duplicate_alias_rejected(self, shop_db):
        with pytest.raises(SqlError):
            sql_to_plan(
                "SELECT * FROM orders o, customer o", shop_db.schema
            )

    def test_filter_pushdown(self, shop_db):
        plan = sql_to_plan(
            "SELECT o.orderkey FROM orders o, customer c "
            "WHERE o.custkey = c.custkey AND c.cname = 'cust1'",
            shop_db.schema,
        )
        text = plan.explain()
        # The customer filter must sit below the join (pushdown).
        join_line = next(
            i for i, line in enumerate(text.splitlines()) if "Join" in line
        )
        filter_line = next(
            i for i, line in enumerate(text.splitlines()) if "cust1" in line
        )
        assert filter_line > join_line

    def test_comma_join_connected_by_where(self, shop_db):
        plan = sql_to_plan(
            "SELECT COUNT(*) AS n FROM orders o, lineitem l "
            "WHERE o.orderkey = l.orderkey",
            shop_db.schema,
        )
        assert "Join" in plan.explain()
        assert "cross" not in plan.explain()


QUERIES = [
    "SELECT COUNT(*) AS n FROM lineitem l",
    "SELECT o.custkey, SUM(o.total) AS s FROM orders o GROUP BY o.custkey "
    "ORDER BY s DESC LIMIT 5",
    "SELECT c.cname, COUNT(*) AS n FROM customer c JOIN orders o "
    "ON c.custkey = o.custkey GROUP BY c.cname ORDER BY c.cname",
    "SELECT n.nname, COUNT(*) AS cnt FROM customer c, nation n "
    "WHERE c.nationkey = n.nationkey GROUP BY n.nname ORDER BY n.nname",
    "SELECT DISTINCT o.custkey FROM orders o ORDER BY custkey",
    "SELECT i.iname, SUM(l.qty) AS q FROM lineitem l JOIN item i "
    "ON l.itemkey = i.itemkey WHERE l.qty BETWEEN 2 AND 8 GROUP BY i.iname "
    "HAVING q > 5 ORDER BY q DESC, i.iname LIMIT 10",
    "SELECT c.cname FROM customer c LEFT JOIN orders o "
    "ON c.custkey = o.custkey WHERE o.orderkey IS NULL ORDER BY c.cname",
    "SELECT COUNT(DISTINCT l.itemkey) AS items FROM lineitem l "
    "WHERE l.qty > 3",
]


@pytest.mark.parametrize("query", QUERIES)
def test_sql_end_to_end(shop_db, query):
    plan = sql_to_plan(query, shop_db.schema)
    partitioned = partition_database(shop_db, pref_chain_config(4))
    expected = LocalExecutor(shop_db).execute(plan).rows
    actual = Executor(partitioned).execute(plan).rows
    assert_same_rows(actual, expected)
