"""SQL three-valued logic: unit contracts plus sqlite3 differencing.

The unit tests pin the NULL contract documented in
``repro.query.expressions``; the property tests evaluate randomly
generated predicates both through the engine's expression language and
through sqlite3, which serves as the independent ground truth.
"""

import random
import sqlite3

from repro.engine.rows import ColumnBatch
from repro.engine.vector import set_numpy_enabled
from repro.fuzz.generator import _gen_pred
from repro.fuzz.ir import expr_from_ir
from repro.fuzz.sqlite_oracle import _expr_sql
from repro.query.expressions import (
    InList,
    IsNull,
    and_,
    col,
    lit,
    not_,
    or_,
)

COLUMNS = ("t.i", "t.f", "t.s", "t.b")


def ev(expression, row):
    """Evaluate through the scalar kernel AND the batch kernel (numpy
    off and on), asserting all three agree before returning the value —
    every unit case below therefore pins all evaluation paths at once."""
    scalar = expression.bind(COLUMNS)(row)
    batch = ColumnBatch.from_rows([row], len(COLUMNS))
    kernel = expression.bind_batch(COLUMNS)
    previous = set_numpy_enabled(False)
    try:
        plain = kernel(batch)
        set_numpy_enabled(True)
        accelerated = kernel(batch)
    finally:
        set_numpy_enabled(previous)
    assert len(plain) == 1 and len(accelerated) == 1
    for value in (plain[0], accelerated[0]):
        if scalar is None:
            assert value is None
        else:
            assert value is not None and value == scalar
    return scalar


class TestComparisons:
    def test_null_equals_null_is_unknown(self):
        assert ev(col("t.i") == col("t.f"), (None, None, "x", True)) is None

    def test_null_against_value_is_unknown(self):
        assert ev(col("t.i") == lit(1), (None, 0.0, "x", True)) is None
        assert ev(col("t.i") < lit(1), (None, 0.0, "x", True)) is None
        assert ev(lit(None) >= col("t.i"), (3, 0.0, "x", True)) is None

    def test_null_against_string_is_no_type_error(self):
        # Python would raise TypeError on None < "x"; SQL says unknown.
        assert ev(col("t.s") < lit("x"), (1, 0.0, None, True)) is None

    def test_non_null_comparison_still_two_valued(self):
        assert ev(col("t.i") == lit(1), (1, 0.0, "x", True)) is True
        assert ev(col("t.i") == lit(2), (1, 0.0, "x", True)) is False


class TestArithmetic:
    def test_null_propagates(self):
        assert ev(col("t.i") + lit(1), (None, 0.0, "x", True)) is None
        assert ev(lit(2) * col("t.f"), (1, None, "x", True)) is None

    def test_division_by_zero_is_null(self):
        # sqlite (the differential oracle) yields NULL, not an error.
        assert ev(col("t.i") / lit(0), (7, 0.0, "x", True)) is None
        assert ev(col("t.f") / col("t.i"), (0, 4.0, "x", True)) is None


class TestKleeneLogic:
    UNKNOWN = col("t.i") == lit(1)  # t.i is NULL in every row below
    ROW = (None, 0.0, "x", True)

    def test_and(self):
        assert ev(and_(self.UNKNOWN, lit(False) == lit(True)), self.ROW) is False
        assert ev(and_(self.UNKNOWN, lit(1) == lit(1)), self.ROW) is None

    def test_or(self):
        assert ev(or_(self.UNKNOWN, lit(1) == lit(1)), self.ROW) is True
        assert ev(or_(self.UNKNOWN, lit(1) == lit(2)), self.ROW) is None

    def test_not(self):
        assert ev(not_(self.UNKNOWN), self.ROW) is None
        assert ev(not_(lit(1) == lit(2)), self.ROW) is True


class TestInList:
    def test_null_needle_is_unknown(self):
        assert ev(InList(col("t.i"), (1, 2)), (None, 0.0, "x", True)) is None

    def test_null_needle_empty_list_is_false(self):
        assert ev(InList(col("t.i"), ()), (None, 0.0, "x", True)) is False
        assert (
            ev(InList(col("t.i"), (), negated=True), (None, 0.0, "x", True))
            is True
        )

    def test_hit_beats_null_in_list(self):
        assert ev(InList(col("t.i"), (1, None)), (1, 0.0, "x", True)) is True

    def test_miss_with_null_in_list_is_unknown(self):
        assert ev(InList(col("t.i"), (1, None)), (3, 0.0, "x", True)) is None

    def test_not_in_with_null_is_never_true(self):
        row_hit = (1, 0.0, "x", True)
        row_miss = (3, 0.0, "x", True)
        assert ev(InList(col("t.i"), (1, None), negated=True), row_hit) is False
        assert ev(InList(col("t.i"), (1, None), negated=True), row_miss) is None


class TestIsNull:
    def test_always_two_valued(self):
        assert ev(IsNull(col("t.i")), (None, 0.0, "x", True)) is True
        assert ev(IsNull(col("t.i")), (1, 0.0, "x", True)) is False
        assert ev(IsNull(col("t.i"), negated=True), (None, 0.0, "x", True)) is False


# -- property tests: random predicates differenced against sqlite3 ---------

ENV = [
    ("p.i", "integer"),
    ("p.j", "integer"),
    ("p.f", "float"),
    ("p.s", "varchar"),
    ("p.b", "boolean"),
]
_VALUE_POOLS = {
    "integer": (None, 0, 1, 2, 13, -5),
    "float": (None, 0.0, 0.5, -3.75, 2.25),
    "varchar": (None, "", "a", "ab", "zz"),
    "boolean": (None, True, False),
}


def _random_rows(rng, count):
    return [
        tuple(rng.choice(_VALUE_POOLS[dtype]) for _, dtype in ENV)
        for _ in range(count)
    ]


def _sqlite_eval(predicate_sql, rows):
    connection = sqlite3.connect(":memory:")
    affinities = {
        "integer": "INTEGER",
        "float": "REAL",
        "varchar": "TEXT",
        "boolean": "INTEGER",
    }
    columns_sql = ", ".join(
        f'"{name}" {affinities[dtype]}' for name, dtype in ENV
    )
    connection.execute(f"CREATE TABLE p ({columns_sql})")
    placeholders = ", ".join("?" for _ in ENV)
    connection.executemany(f"INSERT INTO p VALUES ({placeholders})", rows)
    return [
        value
        for (value,) in connection.execute(
            f"SELECT {predicate_sql} FROM p ORDER BY rowid"
        )
    ]


def _same_verdict(engine_value, sqlite_value):
    if engine_value is None or sqlite_value is None:
        return engine_value is None and sqlite_value is None
    return bool(engine_value) == bool(sqlite_value)


def test_random_predicates_match_sqlite():
    rng = random.Random("3vl-sqlite-differencing")
    rows = _random_rows(rng, 12)
    names = tuple(name for name, _ in ENV)
    batch = ColumnBatch.from_rows(rows, len(names))
    for iteration in range(300):
        predicate_ir = _gen_pred(rng, ENV)
        expression = expr_from_ir(predicate_ir)
        bound = expression.bind(names)
        engine = [bound(row) for row in rows]
        # The vectorized kernel must agree with the scalar path exactly,
        # with the numpy acceleration flag both off and on.
        kernel = expression.bind_batch(names)
        previous = set_numpy_enabled(False)
        try:
            vector_plain = kernel(batch)
            set_numpy_enabled(True)
            vector_numpy = kernel(batch)
        finally:
            set_numpy_enabled(previous)
        for vectorized in (vector_plain, vector_numpy):
            assert len(vectorized) == len(engine)
            for scalar_value, batch_value in zip(engine, vectorized):
                if scalar_value is None:
                    assert batch_value is None, predicate_ir
                else:
                    assert batch_value is not None, predicate_ir
                    assert batch_value == scalar_value, predicate_ir
        via_sqlite = _sqlite_eval(_expr_sql(predicate_ir), rows)
        for position, (ours, theirs) in enumerate(zip(engine, via_sqlite)):
            assert _same_verdict(ours, theirs), (
                f"iteration {iteration}, row {position}: engine={ours!r} "
                f"sqlite={theirs!r} for {predicate_ir!r}"
            )
