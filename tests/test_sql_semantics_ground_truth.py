"""SQL semantics validated against independently computed ground truth.

Engine-vs-engine comparisons cannot catch *planner* bugs (both executors
share the plan), so these tests recompute every answer with plain Python
over the base data.
"""

import pytest

from helpers import pref_chain_config, shop_database
from repro.partitioning import partition_database
from repro.query import Executor, LocalExecutor
from repro.sql import sql_to_plan


@pytest.fixture(scope="module")
def setup():
    database = shop_database(seed=17)
    partitioned = partition_database(database, pref_chain_config(4))
    return database, LocalExecutor(database), Executor(partitioned)


def run_both(setup, query):
    database, local, distributed = setup
    plan = sql_to_plan(query, database.schema)
    local_rows = local.execute(plan).rows
    distributed_rows = distributed.execute(plan).rows
    assert sorted(map(repr, local_rows)) == sorted(map(repr, distributed_rows))
    return local_rows


class TestGroundTruth:
    def test_left_join_where_null_is_anti_join(self, setup):
        database, *_ = setup
        with_orders = {row[1] for row in database.table("orders").rows}
        expected = sorted(
            row[1]
            for row in database.table("customer").rows
            if row[0] not in with_orders
        )
        rows = run_both(
            setup,
            "SELECT c.cname FROM customer c LEFT JOIN orders o "
            "ON c.custkey = o.custkey WHERE o.orderkey IS NULL "
            "ORDER BY c.cname",
        )
        assert [row[0] for row in rows] == expected

    def test_left_join_filter_in_on_keeps_all_left_rows(self, setup):
        database, *_ = setup
        rows = run_both(
            setup,
            "SELECT c.custkey, COUNT(o.orderkey) AS n FROM customer c "
            "LEFT JOIN orders o ON c.custkey = o.custkey "
            "GROUP BY c.custkey ORDER BY c.custkey",
        )
        assert len(rows) == database.table("customer").row_count
        counts = {}
        for order in database.table("orders").rows:
            counts[order[1]] = counts.get(order[1], 0) + 1
        for custkey, n in rows:
            assert n == counts.get(custkey, 0)

    def test_group_by_sums(self, setup):
        database, *_ = setup
        expected = {}
        for order in database.table("orders").rows:
            expected[order[1]] = expected.get(order[1], 0.0) + order[2]
        rows = run_both(
            setup,
            "SELECT o.custkey, SUM(o.total) AS t FROM orders o "
            "GROUP BY o.custkey ORDER BY o.custkey",
        )
        assert {row[0]: pytest.approx(row[1]) for row in rows} == {
            key: pytest.approx(value) for key, value in expected.items()
        }

    def test_join_count(self, setup):
        database, *_ = setup
        customers = {row[0] for row in database.table("customer").rows}
        expected = sum(
            1 for order in database.table("orders").rows if order[1] in customers
        )
        rows = run_both(
            setup,
            "SELECT COUNT(*) AS n FROM orders o JOIN customer c "
            "ON o.custkey = c.custkey",
        )
        assert rows == [(expected,)]

    def test_exists_counts_partnered_rows(self, setup):
        database, *_ = setup
        with_orders = {row[1] for row in database.table("orders").rows}
        expected = sum(
            1 for row in database.table("customer").rows if row[0] in with_orders
        )
        rows = run_both(
            setup,
            "SELECT COUNT(*) AS n FROM customer c WHERE EXISTS "
            "(SELECT * FROM orders o WHERE o.custkey = c.custkey)",
        )
        assert rows == [(expected,)]

    def test_having_filters_groups(self, setup):
        database, *_ = setup
        counts = {}
        for order in database.table("orders").rows:
            counts[order[1]] = counts.get(order[1], 0) + 1
        expected = sorted(key for key, n in counts.items() if n >= 4)
        rows = run_both(
            setup,
            "SELECT o.custkey, COUNT(*) AS n FROM orders o "
            "GROUP BY o.custkey HAVING n >= 4 ORDER BY o.custkey",
        )
        assert [row[0] for row in rows] == expected

    def test_between_and_in(self, setup):
        database, *_ = setup
        expected = sum(
            1
            for row in database.table("lineitem").rows
            if 3 <= row[3] <= 6 and row[2] in (1, 2, 3)
        )
        rows = run_both(
            setup,
            "SELECT COUNT(*) AS n FROM lineitem l "
            "WHERE l.qty BETWEEN 3 AND 6 AND l.itemkey IN (1, 2, 3)",
        )
        assert rows == [(expected,)]

    def test_distinct_values(self, setup):
        database, *_ = setup
        expected = sorted({row[1] for row in database.table("orders").rows})
        rows = run_both(
            setup,
            "SELECT DISTINCT o.custkey FROM orders o ORDER BY custkey",
        )
        assert [row[0] for row in rows] == expected

    def test_count_distinct(self, setup):
        database, *_ = setup
        expected = len({row[2] for row in database.table("lineitem").rows})
        rows = run_both(
            setup,
            "SELECT COUNT(DISTINCT l.itemkey) AS n FROM lineitem l",
        )
        assert rows == [(expected,)]
