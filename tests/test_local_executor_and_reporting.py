"""Direct tests for the reference executor and the report formatter."""

import pytest

from helpers import shop_database
from repro.bench import format_table
from repro.errors import ExecutionError
from repro.query import LocalExecutor, Query
from repro.query.expressions import col, lit


@pytest.fixture(scope="module")
def database():
    return shop_database(seed=12)


class TestLocalExecutor:
    def test_scan_columns_qualified(self, database):
        result = LocalExecutor(database).execute(
            Query.scan("orders", alias="o").plan()
        )
        assert result.columns == ("o.orderkey", "o.custkey", "o.total")

    def test_left_outer_pads_with_none(self, database):
        plan = (
            Query.scan("customer", alias="c")
            .left_join(
                Query.scan("orders", alias="o").where(col("o.total") > lit(1e9)),
                on=[("c.custkey", "o.custkey")],
            )
            .plan()
        )
        result = LocalExecutor(database).execute(plan)
        assert len(result.rows) == database.table("customer").row_count
        assert all(row[-1] is None for row in result.rows)

    def test_cross_join_with_residual(self, database):
        plan = (
            Query.scan("nation", alias="n")
            .cross_join(
                Query.scan("item", alias="i"),
                residual=(col("n.nationkey") == col("i.itemkey")),
            )
            .plan()
        )
        result = LocalExecutor(database).execute(plan)
        assert all(row[0] == row[2] for row in result.rows)

    def test_semi_anti_partition_universe(self, database):
        customer = Query.scan("customer", alias="c")
        orders = Query.scan("orders", alias="o")
        semi = LocalExecutor(database).execute(
            customer.semi_join(orders, on=[("c.custkey", "o.custkey")]).plan()
        )
        anti = LocalExecutor(database).execute(
            customer.anti_join(orders, on=[("c.custkey", "o.custkey")]).plan()
        )
        assert len(semi.rows) + len(anti.rows) == database.table(
            "customer"
        ).row_count

    def test_scalar_aggregate_on_empty_input(self, database):
        plan = (
            Query.scan("orders", alias="o")
            .where(col("o.total") > lit(1e9))
            .aggregate(
                aggregates=[("count", None, "n"), ("sum", col("o.total"), "s")]
            )
            .plan()
        )
        result = LocalExecutor(database).execute(plan)
        assert result.rows == [(0, None)]

    def test_order_by_with_nulls(self, database):
        plan = (
            Query.scan("customer", alias="c")
            .left_join(
                Query.scan("orders", alias="o").where(col("o.total") > lit(90.0)),
                on=[("c.custkey", "o.custkey")],
            )
            .order_by([("o.total", True)], limit=3)
            .plan()
        )
        result = LocalExecutor(database).execute(plan)
        # NULLs sort first under ascending order.
        assert result.rows[0][-1] is None

    def test_unknown_node_rejected(self, database):
        class Bogus:
            pass

        with pytest.raises(ExecutionError):
            LocalExecutor(database).execute(Bogus())


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "value"],
            [("alpha", 1.0), ("b", 123456.789)],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert lines[1].startswith("name")
        assert "alpha" in lines[3]
        # All rows padded to the same width as the separator line.
        assert len(lines[3]) <= len(lines[2]) + 2

    def test_float_formatting(self):
        text = format_table(["v"], [(0.0,), (0.123456,), (1234.5,)])
        assert "0.123" in text
        assert "1234.5" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text
