"""Tests for the SD and WD automated design algorithms."""

import pytest

from repro.design import (
    QuerySpec,
    SchemaDrivenDesigner,
    WorkloadDrivenDesigner,
    is_redundancy_free,
)
from repro.errors import DesignError
from repro.partitioning import (
    JoinPredicate,
    check_pref_invariants,
    partition_database,
)


class TestSchemaDriven:
    def test_produces_valid_configuration(self, shop_db):
        result = SchemaDrivenDesigner(shop_db, 4).design(replicate=["nation"])
        result.config.validate(shop_db.schema)
        partitioned = partition_database(shop_db, result.config)
        check_pref_invariants(partitioned, result.config)

    def test_covers_all_tables(self, shop_db):
        result = SchemaDrivenDesigner(shop_db, 4).design(replicate=["nation"])
        assert set(result.config.tables) == set(shop_db.schema.table_names)

    def test_single_seed_by_default(self, shop_db):
        result = SchemaDrivenDesigner(shop_db, 4).design(replicate=["nation"])
        assert len(result.seeds) == 1

    def test_full_locality_on_tree_schema(self, shop_db):
        # Excluding nation, the shop FK graph is a tree: DL must be 1.
        result = SchemaDrivenDesigner(shop_db, 4).design(replicate=["nation"])
        assert result.data_locality == pytest.approx(1.0)

    def test_no_redundancy_constraints_respected(self, shop_db):
        designer = SchemaDrivenDesigner(shop_db, 4)
        tables = [t for t in shop_db.schema.table_names if t != "nation"]
        result = designer.design(replicate=["nation"], no_redundancy=tables)
        for table in tables:
            assert is_redundancy_free(table, result.config, shop_db.schema)
        partitioned = partition_database(shop_db, result.config)
        for table in tables:
            assert partitioned.table(table).duplicate_count == 0

    def test_constraints_reduce_locality(self, shop_db):
        designer = SchemaDrivenDesigner(shop_db, 4)
        free = designer.design(replicate=["nation"])
        tables = [t for t in shop_db.schema.table_names if t != "nation"]
        constrained = designer.design(
            replicate=["nation"], no_redundancy=tables
        )
        assert constrained.data_locality <= free.data_locality
        assert len(constrained.seeds) >= len(free.seeds)

    def test_estimated_size_ordering(self, shop_db):
        # The chosen configuration's estimate must not exceed alternatives
        # with other seeds (it is the enumeration minimum).
        from repro.design import RedundancyEstimator, find_optimal_config
        from repro.design.spanning import maximum_spanning_forest

        designer = SchemaDrivenDesigner(shop_db, 4)
        result = designer.design(replicate=["nation"])
        graph = result.graph
        estimator = RedundancyEstimator(shop_db, 4)
        mast = maximum_spanning_forest(graph)
        best = find_optimal_config(
            mast, graph.tables, shop_db.schema, estimator, 4
        )
        assert result.estimated_size <= best.estimated_size * 1.0001


class TestWorkloadDriven:
    def make_workload(self):
        return [
            QuerySpec.make(
                "q_lo",
                [JoinPredicate.equi("lineitem", "orderkey", "orders", "orderkey")],
            ),
            QuerySpec.make(
                "q_loc",
                [
                    JoinPredicate.equi("lineitem", "orderkey", "orders", "orderkey"),
                    JoinPredicate.equi("orders", "custkey", "customer", "custkey"),
                ],
            ),
            QuerySpec.make(
                "q_li",
                [JoinPredicate.equi("lineitem", "itemkey", "item", "itemkey")],
            ),
            QuerySpec.make("q_single", []),
        ]

    def test_containment_merge_absorbs_subqueries(self, shop_db):
        result = WorkloadDrivenDesigner(shop_db, 4).design(self.make_workload())
        # q_lo's MAST is contained in q_loc's.
        fragment = result.fragment_for("q_lo")
        assert "q_loc" in fragment.queries

    def test_queries_fully_local(self, shop_db):
        result = WorkloadDrivenDesigner(shop_db, 4).design(self.make_workload())
        assert result.data_locality == pytest.approx(1.0)

    def test_fragments_materialise_and_hold_invariants(self, shop_db):
        result = WorkloadDrivenDesigner(shop_db, 4).design(self.make_workload())
        for fragment in result.fragments:
            partitioned = partition_database(shop_db, fragment.config)
            check_pref_invariants(partitioned, fragment.config)

    def test_single_table_queries_ignored(self, shop_db):
        result = WorkloadDrivenDesigner(shop_db, 4).design(self.make_workload())
        with pytest.raises(DesignError):
            result.fragment_for("q_single")

    def test_merge_reduces_fragments(self, shop_db):
        result = WorkloadDrivenDesigner(shop_db, 4).design(self.make_workload())
        assert result.components_initial >= result.components_after_containment
        assert result.components_after_containment >= len(result.fragments)

    def test_replicated_tables_drop_edges(self, shop_db):
        workload = [
            QuerySpec.make(
                "q_cn",
                [JoinPredicate.equi("customer", "nationkey", "nation", "nationkey")],
            )
        ]
        result = WorkloadDrivenDesigner(shop_db, 4).design(
            workload, replicate=["nation"]
        )
        assert result.fragments == ()

    def test_cyclic_query_graph_loses_an_edge(self, shop_db):
        workload = [
            QuerySpec.make(
                "q_cycle",
                [
                    JoinPredicate.equi("lineitem", "orderkey", "orders", "orderkey"),
                    JoinPredicate.equi("orders", "custkey", "customer", "custkey"),
                    # artificial cycle-closing predicate
                    JoinPredicate.equi("customer", "custkey", "lineitem", "linekey"),
                ],
            )
        ]
        result = WorkloadDrivenDesigner(shop_db, 4).design(workload)
        assert result.data_locality < 1.0

    def test_estimated_redundancy_reported(self, shop_db):
        result = WorkloadDrivenDesigner(shop_db, 4).design(self.make_workload())
        assert result.estimated_size > 0
        assert result.estimated_redundancy >= 0


class TestQuerySpecFromPlan:
    def test_extracts_equi_joins(self, shop_db):
        from repro.query import Query

        plan = (
            Query.scan("lineitem", alias="l")
            .join(Query.scan("orders", alias="o"), on=[("l.orderkey", "o.orderkey")])
            .join(Query.scan("customer", alias="c"), on=[("o.custkey", "c.custkey")])
            .plan()
        )
        spec = QuerySpec.from_plan("q", plan, shop_db.schema)
        assert len(spec.predicates) == 2
        assert spec.tables == frozenset({"lineitem", "orders", "customer"})

    def test_cross_joins_ignored(self, shop_db):
        from repro.query import Query

        plan = (
            Query.scan("item", alias="i")
            .cross_join(Query.scan("nation", alias="n"))
            .plan()
        )
        spec = QuerySpec.from_plan("q", plan, shop_db.schema)
        assert spec.predicates == ()
        assert spec.tables == frozenset({"item", "nation"})

    def test_composite_join_collapses_to_one_predicate(self, shop_db):
        from repro.query import Query

        plan = (
            Query.scan("lineitem", alias="l")
            .join(
                Query.scan("orders", alias="o"),
                on=[("l.orderkey", "o.orderkey"), ("l.qty", "o.custkey")],
            )
            .plan()
        )
        spec = QuerySpec.from_plan("q", plan, shop_db.schema)
        assert len(spec.predicates) == 1
        assert len(spec.predicates[0].left_columns) == 2
