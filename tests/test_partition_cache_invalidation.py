"""Partition cache staleness across incremental loads (regression).

The engine caches each partition's columnar transpose and dup/hasS
bitmap lists.  Bulk-load paths that mutate partition internals *without*
appending — ``_mark_has_partner`` flipping hasS bits after
referenced-side inserts, ``_rebuild_partition`` after deletes, in-place
updates — must call :meth:`Partition.invalidate_caches`, otherwise a
query that ran before the load keeps serving the stale transpose.

The end-to-end tests drive the full ``SimulatedCluster`` path: query,
incremental load, query again, and compare against a cluster built
fresh from the final data.  The "teeth" test re-creates the pre-fix
behaviour by stubbing ``invalidate_caches`` to a no-op and asserts the
stale answer actually diverges — proving these regressions fail without
the fix.
"""

from __future__ import annotations

from helpers import assert_same_rows, shop_schema
from repro.cluster import SimulatedCluster
from repro.partitioning import (
    HashScheme,
    JoinPredicate,
    PartitioningConfig,
    PrefScheme,
)
from repro.query import Query
from repro.query.expressions import col, lit
from repro.storage import Database
from repro.storage.partition import Partition

ORDERS = [  # (orderkey, custkey, total)
    (1, 10, 5.0),
    (2, 11, 7.0),
    (3, 10, 9.0),
    (4, 13, 2.0),
]
CUSTOMERS = [  # custkey 12 starts as an orphan: no order references it.
    (10, "a", 0),
    (11, "b", 0),
    (12, "c", 0),
    (13, "d", 0),
]
NEW_ORDERS = [(5, 12, 4.0), (6, 12, 6.0)]


def _database(orders=ORDERS) -> Database:
    database = Database(shop_schema())
    database.load("customer", list(CUSTOMERS))
    database.load("orders", [tuple(row) for row in orders])
    return database


def _config(n: int = 4) -> PartitioningConfig:
    config = PartitioningConfig(n)
    config.add("orders", HashScheme(("orderkey",), n))
    config.add(
        "customer",
        PrefScheme(
            "orders",
            JoinPredicate.equi("customer", "custkey", "orders", "custkey"),
        ),
    )
    return config


def _semi_join_plan():
    # Answered through the hasS bitmap when optimizations are on — the
    # query that reads the cached bitmap lists.
    return (
        Query.scan("customer", alias="c")
        .semi_join(Query.scan("orders", alias="o"), on=[("c.custkey", "o.custkey")])
        .select(["c.custkey", "c.cname"])
        .plan()
    )


def _cluster(database: Database) -> SimulatedCluster:
    return SimulatedCluster.partition(database, _config(), backend="serial")


def _fresh_rows(orders, plan):
    fresh = _cluster(_database(orders))
    try:
        return fresh.run(plan).rows
    finally:
        fresh.close()


class TestIncrementalLoadInvalidation:
    def test_has_partner_flip_reflected_after_load(self):
        plan = _semi_join_plan()
        cluster = _cluster(_database())
        try:
            before = cluster.run(plan).rows  # populates the bitmap caches
            assert (12, "c") not in before
            cluster.loader.load({"orders": NEW_ORDERS})
            after = cluster.run(plan).rows
        finally:
            cluster.close()
        assert (12, "c") in after
        assert_same_rows(after, _fresh_rows(ORDERS + NEW_ORDERS, plan))

    def test_delete_reflected_after_rebuild(self):
        plan = (
            Query.scan("orders", alias="o")
            .aggregate(
                aggregates=[("count", None, "cnt"), ("sum", col("o.total"), "t")]
            )
            .plan()
        )
        cluster = _cluster(_database())
        try:
            cluster.run(plan)  # populates the columnar caches
            removed = cluster.loader.delete("orders", lambda row: row[0] == 2)
            assert removed == 1
            after = cluster.run(plan).rows
        finally:
            cluster.close()
        survivors = [row for row in ORDERS if row[0] != 2]
        assert_same_rows(after, _fresh_rows(survivors, plan))

    def test_update_reflected_in_place(self):
        plan = (
            Query.scan("orders", alias="o")
            .where(col("o.orderkey") == lit(1))
            .select(["o.total"])
            .plan()
        )
        cluster = _cluster(_database())
        try:
            assert cluster.run(plan).rows == [(5.0,)]
            updated = cluster.loader.update(
                "orders",
                lambda row: row[0] == 1,
                lambda row: (row[0], row[1], 99.0),
            )
            assert updated == 1
            assert cluster.run(plan).rows == [(99.0,)]
        finally:
            cluster.close()


class TestRegressionHasTeeth:
    def test_stale_caches_diverge_without_the_fix(self, monkeypatch):
        """With invalidate_caches() stubbed out (the pre-fix behaviour),
        the hasS flip after a referenced-side load is invisible to the
        cached bitmaps and the semi join returns a stale answer."""
        monkeypatch.setattr(
            Partition, "invalidate_caches", lambda self: None
        )
        plan = _semi_join_plan()
        cluster = _cluster(_database())
        try:
            before = cluster.run(plan).rows
            cluster.loader.load({"orders": NEW_ORDERS})
            stale = cluster.run(plan).rows
        finally:
            cluster.close()
        assert (12, "c") not in stale  # the newly partnered row is missing
        assert sorted(stale) == sorted(before)


SEMI_JOIN_SQL = (
    "SELECT c.custkey, c.cname FROM customer c WHERE EXISTS "
    "(SELECT * FROM orders o WHERE o.custkey = c.custkey)"
)


class TestServingLayerInvalidation:
    """The same staleness discipline one layer up: the serving caches.

    A result served from the cache after a bulk load must be
    indistinguishable from a cluster built fresh from the final data —
    the serving-layer analogue of the partition-cache tests above.
    """

    def test_result_cache_invalidated_by_referenced_side_load(self):
        cluster = _cluster(_database())
        server = cluster.serve(max_inflight=2)
        try:
            before = server.execute(SEMI_JOIN_SQL)
            assert (12, "c") not in before.rows
            # Cached now: a repeat submission is served from the cache.
            repeat = server.submit(SEMI_JOIN_SQL)
            repeat.result()
            assert repeat.cache_hit == "result"
            server.load({"orders": NEW_ORDERS})
            after = server.execute(SEMI_JOIN_SQL)
        finally:
            server.close()
            cluster.close()
        assert (12, "c") in after.rows
        plan = _semi_join_plan()
        assert_same_rows(after.rows, _fresh_rows(ORDERS + NEW_ORDERS, plan))

    def test_plan_cache_invalidated_under_predicate_transfer(self):
        """With predicate transfer on, cached annotations embed Bloom
        filters built from table contents; a load must drop the cached
        plan too, or re-execution filters through stale Blooms."""
        cluster = SimulatedCluster.partition(
            _database(), _config(), backend="serial", predicate_transfer=True
        )
        server = cluster.serve(max_inflight=1)
        join_sql = (
            "SELECT c.cname, o.total FROM customer c "
            "JOIN orders o ON c.custkey = o.custkey"
        )
        try:
            server.execute(join_sql)  # caches plan + Bloom annotations
            server.load({"orders": NEW_ORDERS})
            assert len(server.plan_cache) == 0  # the annotation was dropped
            after = server.execute(join_sql)
        finally:
            server.close()
            cluster.close()
        fresh = SimulatedCluster.partition(
            _database(ORDERS + NEW_ORDERS),
            _config(),
            backend="serial",
            predicate_transfer=True,
        )
        try:
            assert_same_rows(after.rows, fresh.sql(join_sql).rows)
        finally:
            fresh.close()

    def test_delete_and_update_bump_epochs(self):
        count_sql = "SELECT COUNT(*) AS n FROM orders o"
        sum_sql = "SELECT SUM(o.total) AS t FROM orders o"
        cluster = _cluster(_database())
        server = cluster.serve(max_inflight=1)
        try:
            assert server.execute(count_sql).rows == [(4,)]
            server.delete("orders", lambda row: row[0] == 2)
            assert server.execute(count_sql).rows == [(3,)]
            before_total = server.execute(sum_sql).rows[0][0]
            server.update(
                "orders",
                lambda row: row[0] == 1,
                lambda row: (row[0], row[1], row[2] + 100.0),
            )
            after_total = server.execute(sum_sql).rows[0][0]
            assert after_total == before_total + 100.0
        finally:
            server.close()
            cluster.close()
