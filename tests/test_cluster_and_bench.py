"""Tests for the cluster facade and the benchmark harness."""

import pytest

from helpers import pref_chain_config
from repro.bench import (
    Variant,
    actual_redundancy,
    bulk_load_variant,
    estimation_accuracy,
    measure_variant,
    paper_cost_parameters,
    run_workload,
    scaleout_redundancy,
    tpch_variants,
)
from repro.cluster import SimulatedCluster
from repro.design import QuerySpec, SchemaGraph
from repro.workloads.tpch import ALL_QUERIES, SMALL_TABLES


class TestSimulatedCluster:
    def test_partition_and_sql(self, shop_db):
        cluster = SimulatedCluster.partition(shop_db, pref_chain_config(4))
        result = cluster.sql("SELECT COUNT(*) AS n FROM orders o")
        assert result.rows == [(shop_db.table("orders").row_count,)]
        assert cluster.node_count == 4

    def test_explain(self, shop_db):
        cluster = SimulatedCluster.partition(shop_db, pref_chain_config(4))
        text = cluster.explain(
            "SELECT c.cname, COUNT(*) AS n FROM customer c JOIN orders o "
            "ON c.custkey = o.custkey GROUP BY c.cname"
        )
        assert "Join" in text and "pref" in text

    def test_node_reports(self, shop_db):
        cluster = SimulatedCluster.partition(shop_db, pref_chain_config(4))
        reports = cluster.node_reports()
        assert len(reports) == 4
        assert sum(r.rows for r in reports) == cluster.partitioned.total_rows
        assert all(r.bytes > 0 for r in reports)

    def test_bulk_loader_attached(self, shop_db):
        cluster = SimulatedCluster.partition(shop_db, pref_chain_config(4))
        before = cluster.partitioned.table("nation").canonical_row_count
        cluster.loader.insert("nation", [(99, "atlantis")])
        assert (
            cluster.partitioned.table("nation").canonical_row_count == before + 1
        )

    def test_data_redundancy(self, shop_db):
        cluster = SimulatedCluster.partition(shop_db, pref_chain_config(4))
        assert cluster.data_redundancy() > 0


@pytest.fixture(scope="module")
def tpch_setup(small_tpch):
    specs = [
        QuerySpec.from_plan(name, build(), small_tpch.schema)
        for name, build in ALL_QUERIES.items()
    ]
    variants = tpch_variants(small_tpch, 4, specs, SMALL_TABLES)
    return small_tpch, variants


class TestHarness:
    def test_variants_built(self, tpch_setup):
        _db, variants = tpch_setup
        assert set(variants) == {
            "Classical",
            "SD (wo small tables)",
            "SD (wo small tables, wo redundancy)",
            "WD (wo small tables)",
        }

    def test_measure_variant_reproduces_table1_shape(self, tpch_setup):
        db, variants = tpch_setup
        graph = SchemaGraph.from_schema(db.schema, db.table_sizes())
        rows = {
            name: measure_variant(db, variant, graph)
            for name, variant in variants.items()
        }
        assert rows["Classical"].data_locality == pytest.approx(1.0)
        assert rows["SD (wo small tables)"].data_locality == pytest.approx(1.0)
        assert rows["WD (wo small tables)"].data_locality == pytest.approx(1.0)
        nored = rows["SD (wo small tables, wo redundancy)"]
        assert nored.data_locality == pytest.approx(0.7, abs=0.1)
        # Redundancy ordering: wo-red < SD < Classical (paper Table 1).
        assert (
            nored.data_redundancy
            < rows["SD (wo small tables)"].data_redundancy
            < rows["Classical"].data_redundancy
        )

    def test_run_workload_routes_wd_queries(self, tpch_setup):
        db, variants = tpch_setup
        queries = {name: ALL_QUERIES[name]() for name in ("Q3", "Q16")}
        runs = run_workload(
            db, variants["WD (wo small tables)"], queries,
            cost=paper_cost_parameters(0.002),
        )
        assert set(runs) == {"Q3", "Q16"}
        assert all(run.seconds > 0 for run in runs.values())

    def test_bulk_load_variant(self, tpch_setup):
        db, variants = tpch_setup
        stats = bulk_load_variant(db, variants["Classical"])
        assert stats.rows_in == sum(
            db.table(t).row_count for t in variants["Classical"].configs[0].tables
        )
        assert stats.copies_written > stats.rows_in  # replication
        pref_stats = bulk_load_variant(db, variants["SD (wo small tables)"])
        assert pref_stats.index_lookups > 0

    def test_scaleout_redundancy_monotone_for_cp(self, tpch_setup):
        db, _variants = tpch_setup
        from repro.design import classical_partitioning

        def build(count):
            return Variant("cp", [classical_partitioning(db, count)])

        series = scaleout_redundancy(db, build, [1, 2, 4, 8])
        values = [dr for _n, dr in series]
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_estimation_accuracy_returns_points(self, tpch_setup):
        db, _variants = tpch_setup
        points = estimation_accuracy(db, 4, SMALL_TABLES, [0.5, 1.0])
        assert len(points) == 2
        assert points[1].error == pytest.approx(points[1].error)
        assert points[1].error < 0.6  # full scan should be quite accurate
        assert all(p.runtime_seconds > 0 for p in points)

    def test_actual_redundancy_shares_identical_schemes(self, tpch_setup):
        db, variants = tpch_setup
        single = variants["SD (wo small tables)"]
        doubled = Variant("dup", [single.configs[0], single.configs[0]])
        assert actual_redundancy(db, doubled) == pytest.approx(
            actual_redundancy(db, single)
        )
