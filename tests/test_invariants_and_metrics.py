"""Direct tests for the invariant checkers and partitioning metrics."""

import pytest

from helpers import pref_chain_config
from repro.catalog import DataType
from repro.partitioning import (
    HashScheme,
    InvariantViolation,
    JoinPredicate,
    PartitioningConfig,
    PrefScheme,
    check_pref_invariants,
    data_redundancy,
    data_redundancy_against,
    partition_balance,
    partition_database,
    per_table_redundancy,
    storage_per_node,
)
from repro.storage import Database


def tiny_config(n=2):
    config = PartitioningConfig(n)
    config.add("s", HashScheme(("k",), n))
    config.add("r", PrefScheme("s", JoinPredicate.equi("r", "k", "s", "k")))
    return config


def tiny_db():
    from repro.catalog import DatabaseSchema

    schema = DatabaseSchema()
    schema.create_table("s", [("k", DataType.INTEGER)], primary_key=["k"])
    schema.create_table(
        "r", [("rk", DataType.INTEGER), ("k", DataType.INTEGER)], primary_key=["rk"]
    )
    database = Database(schema)
    database.load("s", [(1,), (2,), (3,)])
    database.load("r", [(10, 1), (11, 2), (12, 99)])  # 99 is an orphan
    return database


class TestInvariantChecker:
    def test_clean_partitioning_passes(self):
        database = tiny_db()
        config = tiny_config()
        check_pref_invariants(
            partition_database(database, config), config, exact=True
        )

    def test_missing_copy_detected(self):
        database = tiny_db()
        config = tiny_config()
        partitioned = partition_database(database, config)
        # Corrupt: remove a referencing copy where a partner exists.
        table = partitioned.table("r")
        for partition in table.partitions:
            if partition.rows:
                partition.rows.pop(0)
                partition.source_ids.pop(0)
                break
        with pytest.raises(InvariantViolation):
            check_pref_invariants(partitioned, config)

    def test_duplicate_canonical_detected(self):
        database = tiny_db()
        config = tiny_config()
        partitioned = partition_database(database, config)
        table = partitioned.table("r")
        # Append a second canonical copy of an existing tuple off-grid.
        source = table.partitions[0].source_ids[0] if table.partitions[0].rows else table.partitions[1].source_ids[0]
        row = table.partitions[0].rows[0] if table.partitions[0].rows else table.partitions[1].rows[0]
        table.partitions[0].append(row, source, duplicate=False)
        with pytest.raises(InvariantViolation):
            check_pref_invariants(partitioned, config)

    def test_wrong_has_partner_bit_detected(self):
        database = tiny_db()
        config = tiny_config()
        partitioned = partition_database(database, config)
        table = partitioned.table("r")
        for partition in table.partitions:
            if partition.row_count:
                partition.has_partner[0] = not partition.has_partner[0]
                break
        with pytest.raises(InvariantViolation):
            check_pref_invariants(partitioned, config)

    def test_exact_mode_flags_stray_copies(self):
        database = tiny_db()
        config = tiny_config()
        partitioned = partition_database(database, config)
        table = partitioned.table("r")
        # Add a redundant (duplicate-flagged) copy in a partition without
        # a partner: locality still holds, exactness does not.
        donor = next(p for p in table.partitions if p.row_count)
        row = donor.rows[0]
        source = donor.source_ids[0]
        target = next(
            p for p in table.partitions if p.partition_id != donor.partition_id
        )
        target.append(row, source, duplicate=True, has_partner=True)
        check_pref_invariants(partitioned, config, exact=False)
        with pytest.raises(InvariantViolation):
            check_pref_invariants(partitioned, config, exact=True)


class TestMetrics:
    def test_per_table_redundancy(self, shop_db):
        config = pref_chain_config(4)
        partitioned = partition_database(shop_db, config)
        report = {r.table: r for r in per_table_redundancy(partitioned)}
        assert report["lineitem"].redundancy_factor == 1.0
        assert report["nation"].redundancy_factor == 4.0
        assert report["orders"].redundancy_factor >= 1.0

    def test_data_redundancy_against_base(self, shop_db):
        config = pref_chain_config(4)
        partitioned = partition_database(shop_db, config)
        assert data_redundancy_against(partitioned, shop_db) == pytest.approx(
            data_redundancy(partitioned)
        )

    def test_partition_balance(self, shop_db):
        config = pref_chain_config(4)
        partitioned = partition_database(shop_db, config)
        balance = partition_balance(partitioned.table("lineitem"))
        assert 1.0 <= balance < 2.0  # hash placement is roughly even

    def test_storage_per_node(self, shop_db):
        config = pref_chain_config(4)
        partitioned = partition_database(shop_db, config)
        per_node = storage_per_node(partitioned)
        assert len(per_node) == 4
        assert all(bytes_ > 0 for bytes_ in per_node)
        total = sum(
            t.total_rows * t.schema.row_byte_width
            for t in partitioned.tables.values()
        )
        assert sum(per_node) == total
