"""Property tests for the blocked Bloom filter behind predicate transfer.

Pins the four properties the transfer scheduler's soundness argument
leans on: no false negatives ever, a measured false-positive rate at or
near the sizing target, NULL keys never entering (or matching) a filter
under SQL three-valued logic, and bit-identical filters regardless of
insertion order or builder process.
"""

from __future__ import annotations

import math
import multiprocessing
import pickle
import random

import pytest

from repro.engine.bloom import BloomFilter, validate_bloom_params


def _mixed_keys(rng: random.Random, count: int) -> list:
    """A deterministic mix of the key types join columns produce."""
    keys = []
    for index in range(count):
        kind = index % 4
        if kind == 0:
            keys.append(rng.randrange(1_000_000))
        elif kind == 1:
            keys.append(f"key-{rng.randrange(1_000_000)}")
        elif kind == 2:
            keys.append(rng.random())
        else:
            keys.append((rng.randrange(1000), f"s{rng.randrange(1000)}"))
    return keys


class TestValidation:
    @pytest.mark.parametrize(
        "fpr", [0.0, 1.0, -0.5, 2.0, float("nan"), float("inf"), "0.5", True, None]
    )
    def test_bad_fpr_rejected(self, fpr):
        with pytest.raises(ValueError):
            validate_bloom_params(fpr)

    @pytest.mark.parametrize("capacity", [0, -1, 1.5, "10", True])
    def test_bad_capacity_rejected(self, capacity):
        with pytest.raises(ValueError):
            validate_bloom_params(0.01, capacity)

    def test_good_params_pass(self):
        validate_bloom_params(0.01)
        validate_bloom_params(0.5, 1)
        validate_bloom_params(1e-6, 10_000)

    def test_sized_validates(self):
        with pytest.raises(ValueError):
            BloomFilter.sized(100, 0.0)
        with pytest.raises(ValueError):
            BloomFilter.sized(0, 0.01)


class TestNoFalseNegatives:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_every_inserted_key_is_found(self, seed):
        rng = random.Random(seed)
        keys = _mixed_keys(rng, 2000)
        bloom = BloomFilter.sized(len(keys), 0.01)
        assert bloom.add_many(keys) == len(keys)
        assert all(bloom.might_contain(key) for key in keys)
        assert bloom.probe_many(keys) == [True] * len(keys)


class TestFalsePositiveRate:
    @pytest.mark.parametrize("fpr", [0.01, 0.05])
    def test_measured_fpr_within_2x_of_target(self, fpr):
        rng = random.Random(42)
        capacity = 3000
        inserted = [rng.randrange(10**9) for _ in range(capacity)]
        bloom = BloomFilter.sized(capacity, fpr)
        bloom.add_many(inserted)
        member = set(inserted)
        probes = 30_000
        outside = []
        while len(outside) < probes:
            candidate = rng.randrange(10**9, 2 * 10**9)
            if candidate not in member:
                outside.append(candidate)
        positives = sum(bloom.probe_many(outside))
        measured = positives / probes
        assert measured <= 2 * fpr, f"measured FPR {measured} vs target {fpr}"

    def test_sizing_grows_with_capacity_and_precision(self):
        assert (
            BloomFilter.sized(10_000, 0.01).byte_size
            > BloomFilter.sized(100, 0.01).byte_size
        )
        assert (
            BloomFilter.sized(1000, 0.001).byte_size
            > BloomFilter.sized(1000, 0.1).byte_size
        )
        # k = -ln(p)/ln(2) rounded, clamped to [1, 8].
        assert BloomFilter.sized(100, 0.5).k == 1
        assert BloomFilter.sized(100, 0.01).k == round(-math.log(0.01) / math.log(2))


class TestNullKeys:
    def test_null_never_inserted(self):
        bloom = BloomFilter.sized(10, 0.01)
        bloom.add(None)
        bloom.add((1, None))
        bloom.add((None, None))
        assert bloom.words() == (0,) * bloom.block_count
        assert bloom.add_many([None, (None, 2), 7]) == 1

    def test_null_probe_is_false_even_when_saturated(self):
        bloom = BloomFilter.sized(1, 0.5)
        bloom.blocks = [(1 << 64) - 1] * bloom.block_count  # all bits set
        assert not bloom.might_contain(None)
        assert not bloom.might_contain((None, 1))
        assert bloom.probe_many([None, (3, None), 5]) == [False, False, True]


def _build_filter(payload):
    keys, capacity, fpr = payload
    bloom = BloomFilter.sized(capacity, fpr)
    bloom.add_many(keys)
    return bloom.words()


class TestBitIdentity:
    def test_insertion_order_is_irrelevant(self):
        rng = random.Random(9)
        keys = _mixed_keys(rng, 500)
        forward = BloomFilter.sized(len(keys), 0.01)
        forward.add_many(keys)
        shuffled = list(keys)
        rng.shuffle(shuffled)
        backward = BloomFilter.sized(len(keys), 0.01)
        backward.add_many(shuffled)
        assert forward == backward
        assert forward.words() == backward.words()

    def test_pickle_round_trip(self):
        bloom = BloomFilter.sized(100, 0.01)
        bloom.add_many(range(100))
        clone = pickle.loads(pickle.dumps(bloom))
        assert clone == bloom
        assert clone.capacity == bloom.capacity
        assert clone.probe_many([1, 2, 10**9]) == bloom.probe_many([1, 2, 10**9])

    def test_bit_identical_across_processes(self):
        rng = random.Random(17)
        keys = _mixed_keys(rng, 400)
        local = BloomFilter.sized(len(keys), 0.01)
        local.add_many(keys)
        context = multiprocessing.get_context("fork")
        with context.Pool(1) as pool:
            remote_words = pool.apply(_build_filter, ((keys, len(keys), 0.01),))
        assert remote_words == local.words()
