"""Seed-scheme choices in the design algorithms (Definition 1 generality)."""

import pytest

from helpers import shop_database
from repro.design import SchemaDrivenDesigner
from repro.errors import DesignError
from repro.partitioning import SchemeKind, check_pref_invariants, partition_database


@pytest.fixture(scope="module")
def database():
    return shop_database(seed=13)


@pytest.mark.parametrize(
    "seed_scheme, kind",
    [
        ("hash", SchemeKind.HASH),
        ("range", SchemeKind.RANGE),
        ("round_robin", SchemeKind.ROUND_ROBIN),
    ],
)
def test_seed_scheme_selected(database, seed_scheme, kind):
    result = SchemaDrivenDesigner(database, 4).design(
        replicate=["nation"], seed_scheme=seed_scheme
    )
    seed = result.seeds[0]
    assert result.config.scheme_of(seed).kind is kind
    partitioned = partition_database(database, result.config)
    check_pref_invariants(partitioned, result.config, exact=True)


def test_range_boundaries_split_data(database):
    result = SchemaDrivenDesigner(database, 4).design(
        replicate=["nation"], seed_scheme="range"
    )
    seed = result.seeds[0]
    partitioned = partition_database(database, result.config)
    sizes = [p.row_count for p in partitioned.table(seed).partitions]
    # Quantile boundaries give a roughly even split.
    assert max(sizes) <= 2 * max(1, min(s for s in sizes if s) )


def test_unknown_seed_scheme_rejected(database):
    with pytest.raises(DesignError):
        SchemaDrivenDesigner(database, 4).design(
            replicate=["nation"], seed_scheme="mystery"
        )


def test_queries_correct_under_range_seed(database):
    from helpers import assert_same_rows
    from repro.query import Executor, LocalExecutor, Query
    from repro.query.expressions import col

    result = SchemaDrivenDesigner(database, 4).design(
        replicate=["nation"], seed_scheme="range"
    )
    partitioned = partition_database(database, result.config)
    plan = (
        Query.scan("customer", alias="c")
        .join(Query.scan("orders", alias="o"), on=[("c.custkey", "o.custkey")])
        .aggregate(group_by=["c.cname"], aggregates=[("sum", col("o.total"), "t")])
        .order_by(["c.cname"])
        .plan()
    )
    assert_same_rows(
        Executor(partitioned).execute(plan).rows,
        LocalExecutor(database).execute(plan).rows,
    )
