"""Shared test helpers: databases, configurations, result comparison."""

from __future__ import annotations

import random
from collections import Counter

from repro.catalog import DatabaseSchema, DataType
from repro.partitioning import (
    HashScheme,
    JoinPredicate,
    PartitioningConfig,
    PrefScheme,
    ReplicatedScheme,
)
from repro.storage import Database


def normalise_rows(rows, places: int = 6) -> Counter:
    """Multiset of rows with floats rounded (summation order varies)."""
    return Counter(
        tuple(
            round(value, places) if isinstance(value, float) else value
            for value in row
        )
        for row in rows
    )


def assert_same_rows(actual, expected, places: int = 6) -> None:
    """Assert two row collections are equal as multisets (float-tolerant)."""
    left = normalise_rows(actual, places)
    right = normalise_rows(expected, places)
    if left != right:
        missing = list((right - left).items())[:5]
        extra = list((left - right).items())[:5]
        raise AssertionError(
            f"row multisets differ; missing={missing} extra={extra}"
        )


def shop_schema() -> DatabaseSchema:
    """A small orders/customers/items schema used across tests."""
    schema = DatabaseSchema()
    schema.create_table(
        "customer",
        [
            ("custkey", DataType.INTEGER),
            ("cname", DataType.VARCHAR),
            ("nationkey", DataType.INTEGER),
        ],
        primary_key=["custkey"],
    )
    schema.create_table(
        "orders",
        [
            ("orderkey", DataType.INTEGER),
            ("custkey", DataType.INTEGER),
            ("total", DataType.FLOAT),
        ],
        primary_key=["orderkey"],
    )
    schema.create_table(
        "lineitem",
        [
            ("linekey", DataType.INTEGER),
            ("orderkey", DataType.INTEGER),
            ("itemkey", DataType.INTEGER),
            ("qty", DataType.INTEGER),
        ],
        primary_key=["linekey"],
    )
    schema.create_table(
        "item",
        [("itemkey", DataType.INTEGER), ("iname", DataType.VARCHAR)],
        primary_key=["itemkey"],
    )
    schema.create_table(
        "nation",
        [("nationkey", DataType.INTEGER), ("nname", DataType.VARCHAR)],
        primary_key=["nationkey"],
    )
    schema.add_foreign_key("fk_o_c", "orders", ["custkey"], "customer", ["custkey"])
    schema.add_foreign_key("fk_l_o", "lineitem", ["orderkey"], "orders", ["orderkey"])
    schema.add_foreign_key("fk_l_i", "lineitem", ["itemkey"], "item", ["itemkey"])
    schema.add_foreign_key(
        "fk_c_n", "customer", ["nationkey"], "nation", ["nationkey"]
    )
    return schema


def shop_database(
    seed: int = 0,
    customers: int = 20,
    orders: int = 60,
    lineitems: int = 200,
    items: int = 15,
    nations: int = 4,
    orphans: bool = True,
) -> Database:
    """A populated shop database with orphans and skew knobs."""
    rng = random.Random(seed)
    database = Database(shop_schema())
    database.load("nation", [(i, f"nation{i}") for i in range(nations)])
    database.load(
        "customer",
        [(i, f"cust{i}", rng.randrange(nations)) for i in range(customers)],
    )
    database.load("item", [(i, f"item{i}") for i in range(items)])
    # With orphans=True some orders/lineitems reference keys that do not
    # exist, exercising the PREF round-robin path.
    customer_domain = int(customers * 1.2) if orphans else customers
    order_domain = int(orders * 1.1) if orphans else orders
    database.load(
        "orders",
        [
            (i, rng.randrange(customer_domain), float(rng.randrange(100)))
            for i in range(orders)
        ],
    )
    database.load(
        "lineitem",
        [
            (
                i,
                rng.randrange(order_domain),
                rng.randrange(items),
                1 + rng.randrange(9),
            )
            for i in range(lineitems)
        ],
    )
    return database


def pref_chain_config(n: int) -> PartitioningConfig:
    """lineitem seed; orders PREF lineitem; customer PREF orders; rest."""
    config = PartitioningConfig(n)
    config.add("lineitem", HashScheme(("linekey",), n))
    config.add(
        "orders",
        PrefScheme(
            "lineitem", JoinPredicate.equi("orders", "orderkey", "lineitem", "orderkey")
        ),
    )
    config.add(
        "customer",
        PrefScheme(
            "orders", JoinPredicate.equi("customer", "custkey", "orders", "custkey")
        ),
    )
    config.add(
        "item",
        PrefScheme(
            "lineitem", JoinPredicate.equi("item", "itemkey", "lineitem", "itemkey")
        ),
    )
    config.add("nation", ReplicatedScheme(n))
    return config


def ref_chain_config(n: int) -> PartitioningConfig:
    """customer seed; orders PREF customer; lineitem PREF orders (REF-like)."""
    config = PartitioningConfig(n)
    config.add("customer", HashScheme(("custkey",), n))
    config.add(
        "orders",
        PrefScheme(
            "customer", JoinPredicate.equi("orders", "custkey", "customer", "custkey")
        ),
    )
    config.add(
        "lineitem",
        PrefScheme(
            "orders", JoinPredicate.equi("lineitem", "orderkey", "orders", "orderkey")
        ),
    )
    config.add("item", ReplicatedScheme(n))
    config.add("nation", ReplicatedScheme(n))
    return config


def buggy_left_outer_local_join():
    """The pre-fix ``Rewriter._local_join``, for bug-resurrection tests.

    Re-introduces the historical LEFT OUTER defect: the join keys were
    merged into the equivalence groups even though padded rows NULL the
    right-side key, so a downstream GROUP BY on the right key was treated
    as partition-local and emitted one NULL group per partition.  Install
    with ``monkeypatch.setattr(Rewriter, "_local_join", ...)``.
    """
    from dataclasses import replace as _replace

    from repro.query.plan import JoinKind
    from repro.query.rewrite import Annotated, Rewriter, _merge_equivalences

    original = Rewriter._local_join

    def buggy(self, node, left, right, case, referenced_side):
        result = original(self, node, left, right, case, referenced_side)
        if node.kind is not JoinKind.LEFT_OUTER:
            return result
        pairs = [
            (
                left.props.columns[left.props.position(l)],
                right.props.columns[right.props.position(r)],
            )
            for l, r in node.on
        ]
        merged = _merge_equivalences(
            left.props.equivalences + right.props.equivalences, pairs
        )
        props = _replace(result.props, equivalences=merged)
        return Annotated(
            result.node,
            props,
            result.inputs,
            pristine=result.pristine,
            extra=result.extra,
        )

    return buggy


def all_hashed_config(n: int) -> PartitioningConfig:
    """Every table hash-partitioned on its primary key."""
    config = PartitioningConfig(n)
    config.add("customer", HashScheme(("custkey",), n))
    config.add("orders", HashScheme(("orderkey",), n))
    config.add("lineitem", HashScheme(("linekey",), n))
    config.add("item", HashScheme(("itemkey",), n))
    config.add("nation", HashScheme(("nationkey",), n))
    return config
