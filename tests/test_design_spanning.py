"""Tests for maximum spanning tree/forest extraction."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.design import (
    GraphEdge,
    SchemaGraph,
    enumerate_maximum_spanning_forests,
    maximum_spanning_forest,
)
from repro.design.spanning import forest_weight
from repro.partitioning import JoinPredicate


def edge(a, b, weight):
    return GraphEdge(JoinPredicate.equi(a, "x", b, "y"), weight)


def paper_figure4_graph() -> SchemaGraph:
    """The simplified TPC-H schema graph of paper Figure 4 (SF = 1)."""
    graph = SchemaGraph(
        {"L": 6_000_000, "O": 1_500_000, "C": 150_000, "S": 10_000, "N": 25}
    )
    graph.add_edge(edge("L", "O", 1_500_000))
    graph.add_edge(edge("O", "C", 150_000))
    graph.add_edge(edge("L", "S", 10_000))
    graph.add_edge(edge("C", "N", 25))
    graph.add_edge(edge("S", "N", 25))
    return graph


class TestMaximumSpanningForest:
    def test_figure4_mast_drops_one_nation_edge(self):
        graph = paper_figure4_graph()
        mast = maximum_spanning_forest(graph)
        assert len(mast) == 4
        assert forest_weight(mast) == 1_500_000 + 150_000 + 10_000 + 25
        kept = {frozenset(e.tables) for e in mast}
        # Exactly one of the two weight-25 nation edges survives.
        nation_edges = {frozenset({"C", "N"}), frozenset({"S", "N"})}
        assert len(kept & nation_edges) == 1

    def test_disconnected_graph_spans_each_component(self):
        graph = SchemaGraph({"a": 1, "b": 1, "c": 1, "d": 1})
        graph.add_edge(edge("a", "b", 5))
        graph.add_edge(edge("c", "d", 7))
        mast = maximum_spanning_forest(graph)
        assert len(mast) == 2

    def test_cycle_drops_lightest_edge(self):
        graph = SchemaGraph({"a": 1, "b": 1, "c": 1})
        graph.add_edge(edge("a", "b", 10))
        graph.add_edge(edge("b", "c", 20))
        graph.add_edge(edge("a", "c", 5))
        mast = maximum_spanning_forest(graph)
        weights = sorted(e.weight for e in mast)
        assert weights == [10, 20]

    def test_deterministic(self):
        graph = paper_figure4_graph()
        first = [e.key() for e in maximum_spanning_forest(graph)]
        second = [e.key() for e in maximum_spanning_forest(graph)]
        assert first == second


class TestEnumeration:
    def test_figure4_has_two_masts(self):
        graph = paper_figure4_graph()
        forests = list(enumerate_maximum_spanning_forests(graph, limit=10))
        # The C-N / S-N tie yields exactly two optimal trees.
        assert len(forests) == 2
        weights = {forest_weight(f) for f in forests}
        assert weights == {1_660_025}

    def test_first_enumerated_matches_kruskal(self):
        graph = paper_figure4_graph()
        forests = list(enumerate_maximum_spanning_forests(graph, limit=1))
        assert {e.key() for e in forests[0]} == {
            e.key() for e in maximum_spanning_forest(graph)
        }

    def test_limit_respected(self):
        graph = SchemaGraph({c: 1 for c in "abcde"})
        for i, a in enumerate("abcde"):
            for b in "abcde"[i + 1 :]:
                graph.add_edge(edge(a, b, 1))
        forests = list(enumerate_maximum_spanning_forests(graph, limit=3))
        assert len(forests) == 3

    @settings(max_examples=30, deadline=None)
    @given(
        weights=st.lists(
            st.integers(min_value=1, max_value=50), min_size=3, max_size=10
        )
    )
    def test_enumerated_forests_are_optimal_spanning_trees(self, weights):
        tables = [f"t{i}" for i in range(len(weights))]
        graph = SchemaGraph({t: 1 for t in tables})
        # A ring plus chords.
        for i, weight in enumerate(weights):
            graph.add_edge(edge(tables[i], tables[(i + 1) % len(tables)], weight))
        best = forest_weight(maximum_spanning_forest(graph))
        for forest in enumerate_maximum_spanning_forests(graph, limit=5):
            assert forest_weight(forest) == best
            sub = SchemaGraph({t: 1 for t in tables}, forest)
            assert sub.is_acyclic()
            assert len(forest) == len(tables) - 1
