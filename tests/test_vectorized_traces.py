"""The batch engine's canonical traces match the frozen row engine's.

The fixtures under ``tests/fixtures/trace_*_row_engine.txt`` are
``repr(result.trace.canonical())`` captured from the row-at-a-time engine
this codebase shipped before the columnar refactor, on a fixed workload
(TPC-H SF 0.002 seed 1, schema-driven PREF design on 4 nodes, serial
backend).  Canonical traces include every operator's row/exchange/network
accounting, so equality here proves the vectorized operators are
observation-identical to the row engine — not just same answers, but the
same rows through the same exchanges.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cluster import SimulatedCluster
from repro.design import SchemaDrivenDesigner
from repro.workloads.tpch import ALL_QUERIES, SMALL_TABLES, generate_tpch

FIXTURES = Path(__file__).parent / "fixtures"
TRACED_QUERIES = ("Q1", "Q3", "Q6", "Q16", "Q21")


@pytest.fixture(scope="module")
def trace_cluster():
    database = generate_tpch(scale_factor=0.002, seed=1)
    design = SchemaDrivenDesigner(database, 4).design(replicate=SMALL_TABLES)
    cluster = SimulatedCluster.partition(
        database, design.config, backend="serial"
    )
    yield cluster
    cluster.close()


@pytest.mark.parametrize("name", TRACED_QUERIES)
def test_canonical_trace_matches_row_engine(trace_cluster, name):
    fixture = FIXTURES / f"trace_{name.lower()}_row_engine.txt"
    expected = fixture.read_text().strip()
    result = trace_cluster.run(ALL_QUERIES[name](), analyze=True)
    assert repr(result.trace.canonical()).strip() == expected
