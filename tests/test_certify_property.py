"""Property tests for the certifier as a fuzz oracle.

The contract the fuzz wiring depends on, checked over the real case
generator:

* completeness in practice — for a broad sweep of seeded random
  schemas/configs/queries, every plan the rewriter emits (default and
  ablation-variant flags alike) certifies;
* soundness in practice — certified plans agree across all three engine
  backends, down to canonical stats and span traces (run_case's trace
  equality checks);
* wiring — a fuzz run with the certify oracle enabled stays clean on a
  fixed seed, and when a refuted plan does slip in (bug resurrected),
  the minimised saved repro carries the refutation payload and its
  synthesized counterexample.
"""

from __future__ import annotations

import copy
from pathlib import Path

from helpers import buggy_left_outer_local_join
from repro.fuzz import ir
from repro.fuzz.generator import generate_case
from repro.fuzz.runner import run_case, run_fuzz
from repro.partitioning import partition_database
from repro.query.certify import certify
from repro.query.executor import Executor
from repro.query.rewrite import Rewriter

REPROS = Path(__file__).parent / "fixtures" / "repros"

SWEEP = 200


def test_every_generated_plan_certifies():
    """200 seeded generator configs: the rewriter only emits certifiable
    plans, under the default flags and the case's random ablation flags."""
    checked = 0
    for index in range(SWEEP):
        case = generate_case(0, index)
        database = ir.build_database(case)
        config = ir.build_config(case)
        config.validate(database.schema)
        partitioned = partition_database(database, config)
        variant = case.get("variant") or {}
        executors = [
            ("default", Executor(partitioned)),
            (
                "variant",
                Executor(
                    partitioned,
                    optimizations=bool(variant.get("optimizations", True)),
                    locality=bool(variant.get("locality", True)),
                ),
            ),
        ]
        for qindex, query in enumerate(case["queries"]):
            plan = ir.build_plan(query)
            for label, executor in executors:
                verdict = certify(executor.annotate(plan), partitioned)
                assert verdict.certified, (
                    f"case {index} query {qindex} ({label} plan, variant="
                    f"{variant}):\n{verdict.render()}"
                )
                checked += 1
    assert checked > 2 * SWEEP


def test_certified_plans_agree_across_backends():
    """Certified cases pass serial/thread/process row + trace equality."""
    for index in range(8):
        case = generate_case(3, index)
        divergence = run_case(
            case,
            backends=("serial", "thread", "process"),
            check_sqlite=False,
            check_certify=True,
        )
        assert divergence is None, f"case {index}: {divergence.describe()}"


def test_fuzz_run_with_certify_oracle_is_clean():
    report = run_fuzz(
        30, seed=1, backends=("serial",), check_sqlite=False, out=None
    )
    assert report.ok, report.summary()


def test_saved_repro_carries_refutation_payload(tmp_path, monkeypatch):
    """A refuted plan's minimised repro embeds the refutation and its
    counterexample (the shrinker preserves the divergence kind)."""
    pr3 = ir.load_case(str(REPROS / "pr3_left_outer_null_group.json"))
    monkeypatch.setattr(Rewriter, "_local_join", buggy_left_outer_local_join())
    monkeypatch.setattr(
        "repro.fuzz.runner.generate_case",
        lambda seed, index=0: copy.deepcopy(pr3),
    )
    out = tmp_path / "certify-repro.json"
    report = run_fuzz(
        1,
        seed=0,
        backends=("serial",),
        check_sqlite=False,
        out=str(out),
        max_shrink=40,
    )
    assert not report.ok
    assert report.divergence.kind == "certify_refuted"
    assert out.exists()
    saved = ir.load_case(str(out))
    payload = saved["certify"]
    assert payload["refutation"]["check"] == "aggregate:local"
    counterexample = payload["counterexample"]
    # The embedded counterexample is itself a replayable case that still
    # diverges under the bug...
    divergence = run_case(
        counterexample, backends=("serial",), check_sqlite=False
    )
    assert divergence is not None
    # ...and everything is clean once the bug is removed again.
    monkeypatch.undo()
    assert (
        run_case(saved, backends=("serial",), check_sqlite=False) is None
    )
