"""Tests for schema graphs and the data-locality metric."""

import pytest

from helpers import shop_schema
from repro.design import GraphEdge, SchemaGraph, data_locality
from repro.errors import DesignError
from repro.partitioning import JoinPredicate

SIZES = {"customer": 20, "orders": 60, "lineitem": 200, "item": 15, "nation": 4}


def edge(a, ca, b, cb, weight):
    return GraphEdge(JoinPredicate.equi(a, ca, b, cb), weight)


class TestSchemaGraph:
    def test_from_schema_uses_fks_and_min_size(self):
        graph = SchemaGraph.from_schema(shop_schema(), SIZES)
        assert set(graph.tables) == set(SIZES)
        weights = {frozenset(e.tables): e.weight for e in graph.edges}
        assert weights[frozenset({"orders", "customer"})] == 20
        assert weights[frozenset({"lineitem", "orders"})] == 60
        assert weights[frozenset({"lineitem", "item"})] == 15
        assert weights[frozenset({"customer", "nation"})] == 4

    def test_exclusion_drops_edges(self):
        graph = SchemaGraph.from_schema(shop_schema(), SIZES, exclude=["nation"])
        assert "nation" not in graph.tables
        assert all("nation" not in e.tables for e in graph.edges)

    def test_from_predicates(self):
        graph = SchemaGraph.from_predicates(
            [JoinPredicate.equi("orders", "custkey", "customer", "custkey")],
            SIZES,
        )
        assert set(graph.tables) == {"orders", "customer"}
        assert graph.edges[0].weight == 20

    def test_from_predicates_unknown_size(self):
        with pytest.raises(DesignError):
            SchemaGraph.from_predicates(
                [JoinPredicate.equi("a", "x", "b", "y")], {"a": 1}
            )

    def test_duplicate_edges_collapse(self):
        graph = SchemaGraph({"a": 1, "b": 2})
        graph.add_edge(edge("a", "x", "b", "y", 1))
        graph.add_edge(edge("b", "y", "a", "x", 1))  # same edge, flipped
        assert len(graph.edges) == 1

    def test_connected_components(self):
        graph = SchemaGraph({"a": 1, "b": 1, "c": 1, "d": 1})
        graph.add_edge(edge("a", "x", "b", "y", 1))
        components = sorted(
            tuple(sorted(component)) for component in graph.connected_components()
        )
        assert components == [("a", "b"), ("c",), ("d",)]

    def test_is_acyclic(self):
        graph = SchemaGraph({"a": 1, "b": 1, "c": 1})
        graph.add_edge(edge("a", "x", "b", "y", 1))
        graph.add_edge(edge("b", "y", "c", "z", 1))
        assert graph.is_acyclic()
        graph.add_edge(edge("a", "x", "c", "z", 1))
        assert not graph.is_acyclic()

    def test_merged_with_and_contains(self):
        first = SchemaGraph({"a": 1, "b": 1})
        first.add_edge(edge("a", "x", "b", "y", 1))
        second = SchemaGraph({"b": 1, "c": 1})
        second.add_edge(edge("b", "y", "c", "z", 1))
        merged = first.merged_with(second)
        assert merged.contains(first)
        assert merged.contains(second)
        assert not first.contains(merged)

    def test_subgraph(self):
        graph = SchemaGraph.from_schema(shop_schema(), SIZES)
        sub = graph.subgraph(["lineitem", "orders"])
        assert set(sub.tables) == {"lineitem", "orders"}
        assert len(sub.edges) == 1


class TestDataLocality:
    def test_full_and_empty(self):
        graph = SchemaGraph.from_schema(shop_schema(), SIZES)
        assert data_locality(graph, graph.edges) == 1.0
        assert data_locality(graph, []) == 0.0

    def test_partial_is_weight_fraction(self):
        graph = SchemaGraph({"a": 10, "b": 10, "c": 10})
        e1 = edge("a", "x", "b", "y", 30)
        e2 = edge("b", "y", "c", "z", 10)
        graph.add_edge(e1)
        graph.add_edge(e2)
        assert data_locality(graph, [e1]) == pytest.approx(0.75)

    def test_edgeless_graph_is_fully_local(self):
        graph = SchemaGraph({"a": 1})
        assert data_locality(graph, []) == 1.0
