"""EXPLAIN ANALYZE: rendering, JSON export + schema, SQL prefix, CLI.

The tentpole acceptance test lives here: TPC-H Q3 under the
schema-driven PREF design must report *identical* canonical span trees
and merged row/shuffle counters on the serial, thread and process
backends, and the JSON trace export must validate against the checked-in
schema (``src/repro/obs/trace_schema.json``).
"""

from __future__ import annotations

import json

import pytest

from helpers import pref_chain_config
from repro.cluster import SimulatedCluster
from repro.design import SchemaDrivenDesigner
from repro.engine import ProcessPoolBackend, SerialBackend, ThreadPoolBackend
from repro.obs.explain import (
    dump_trace,
    load_trace_schema,
    render_analyze,
    trace_to_json,
    validate_trace,
)
from repro.partitioning import partition_database
from repro.query import Executor
from repro.sql import strip_explain
from repro.workloads.tpch import ALL_QUERIES, SMALL_TABLES


@pytest.fixture(scope="module")
def q3_results(tiny_tpch):
    """Q3 run with analyze=True on all three backends (shared design)."""
    design = SchemaDrivenDesigner(tiny_tpch, 4).design(replicate=SMALL_TABLES)
    partitioned = partition_database(tiny_tpch, design.config)
    thread_pool = ThreadPoolBackend(max_workers=4)
    backends = {
        "serial": SerialBackend(),
        "thread": thread_pool,
        "process": ProcessPoolBackend(max_workers=2),
    }
    results = {
        name: Executor(partitioned, backend=backend).execute(
            ALL_QUERIES["Q3"](), analyze=True, query_name="Q3"
        )
        for name, backend in backends.items()
    }
    yield results
    thread_pool.close()


def test_q3_traces_identical_across_backends(q3_results):
    # The acceptance criterion: identical span trees and merged
    # row/shuffle counters (timings excluded) on all three backends.
    reference = q3_results["serial"].trace
    for name in ("thread", "process"):
        assert q3_results[name].trace.canonical() == reference.canonical()
    for counter in (
        "engine.rows.out",
        "engine.rows.shipped",
        "engine.bytes.shuffled",
        "engine.shuffles",
        "engine.rows.dup_eliminated",
        "engine.partitions.scanned",
    ):
        values = {
            name: result.trace.metrics.counter(counter)
            for name, result in q3_results.items()
        }
        assert len(set(values.values())) == 1, (counter, values)


def test_q3_rows_match_trace_accounting(q3_results):
    result = q3_results["serial"]
    trace = result.trace
    assert trace.query == "Q3"
    assert trace.node_count == 4
    # The root gather's output is the query result.
    assert trace.spans()[-1].rows_out == len(result.rows)
    # Trace counters reconcile with the cost-model stats.
    assert trace.metrics.counter("engine.rows.shipped") == (
        result.stats.rows_shipped
    )
    assert trace.metrics.counter("engine.shuffles") == (
        result.stats.shuffle_count
    )


def test_render_analyze_shows_annotations_and_measurements(q3_results):
    text = q3_results["serial"].explain_analyze()
    assert text == render_analyze(q3_results["serial"].trace)
    assert text.startswith("EXPLAIN ANALYZE Q3")
    assert "locality=" in text
    assert "rows=" in text
    assert "time=" in text
    # The rewriter's static annotations render next to the measurements.
    assert "case" in text
    # The totals footer aggregates the merged registry.
    assert "total:" in text.lower() or "totals" in text.lower()


def test_trace_json_validates_against_schema(q3_results, tmp_path):
    trace = q3_results["process"].trace
    data = trace_to_json(trace)
    assert validate_trace(data) == []
    # The export is pure JSON (round-trips through a string).
    assert validate_trace(json.loads(json.dumps(data))) == []
    path = tmp_path / "q3.json"
    dump_trace(trace, path)
    reloaded = json.loads(path.read_text())
    assert validate_trace(reloaded, load_trace_schema()) == []
    assert reloaded["query"] == "Q3"
    assert reloaded["backend"] == "process_pool"


def test_trace_schema_rejects_malformed_documents(q3_results):
    good = trace_to_json(q3_results["serial"].trace)
    missing = dict(good)
    del missing["root"]
    assert validate_trace(missing)
    wrong_type = dict(good)
    wrong_type["node_count"] = "four"
    assert validate_trace(wrong_type)
    bad_method = json.loads(json.dumps(good))
    bad_method["root"]["method"] = "sharded"
    assert validate_trace(bad_method)
    bad_phase = json.loads(json.dumps(good))
    spans = [bad_phase["root"]]
    while spans:
        span = spans.pop()
        if span["tasks"]:
            span["tasks"][0]["phase"] = "warmup"
            break
        spans.extend(span["children"])
    assert validate_trace(bad_phase)


# -- SQL front-end integration -------------------------------------------


def test_strip_explain_prefix():
    assert strip_explain("SELECT 1") == (None, "SELECT 1")
    mode, body = strip_explain("EXPLAIN SELECT x FROM t")
    assert mode == "explain"
    assert body == "SELECT x FROM t"
    mode, body = strip_explain("  explain   analyze\nSELECT x FROM t")
    assert mode == "explain_analyze"
    assert body == "SELECT x FROM t"
    # EXPLAIN must be a whole word, not a prefix of an identifier.
    mode, body = strip_explain("EXPLAINER")
    assert mode is None


def test_cluster_sql_explain_statements(shop_db):
    cluster = SimulatedCluster.partition(shop_db, pref_chain_config(4))
    try:
        sql = (
            "SELECT c.cname, o.total FROM customer c "
            "JOIN orders o ON c.custkey = o.custkey"
        )
        plain = cluster.sql(sql)
        assert plain.rows
        explained = cluster.sql(f"EXPLAIN {sql}")
        assert explained.columns == ("plan",)
        text = "\n".join(row[0] for row in explained.rows)
        assert "Join" in text
        analyzed = cluster.sql(f"EXPLAIN ANALYZE {sql}")
        assert analyzed.columns == ("plan",)
        text = "\n".join(row[0] for row in analyzed.rows)
        assert text.startswith("EXPLAIN ANALYZE")
        assert "locality=" in text
    finally:
        cluster.close()


def test_cluster_run_analyze_keeps_result_shape(shop_db):
    cluster = SimulatedCluster.partition(shop_db, pref_chain_config(4))
    try:
        sql = "SELECT COUNT(*) AS n FROM lineitem l"
        plain = cluster.sql(sql)
        traced = cluster.sql(sql, analyze=True)
        assert traced.rows == plain.rows
        assert plain.trace is None
        assert traced.trace is not None
        assert traced.explain_analyze()
    finally:
        cluster.close()


# -- CLI -------------------------------------------------------------------


def test_cli_explain_analyze_check_and_export(tmp_path, capsys):
    from repro.__main__ import main

    out = tmp_path / "trace.json"
    rc = main(
        [
            "explain",
            "--query",
            "Q1",
            "--analyze",
            "--backends",
            "serial,thread",
            "--check",
            "--json-out",
            str(out),
            "--scale",
            "0.001",
            "--seed",
            "3",
        ]
    )
    captured = capsys.readouterr()
    assert rc == 0
    assert "EXPLAIN ANALYZE Q1" in captured.out
    assert "trace check OK" in captured.out
    data = json.loads(out.read_text())
    assert validate_trace(data) == []
    assert data["query"] == "Q1"


def test_cli_explain_without_analyze(capsys):
    from repro.__main__ import main

    rc = main(["explain", "--query", "Q3", "--scale", "0.001", "--seed", "3"])
    captured = capsys.readouterr()
    assert rc == 0
    assert "Scan(orders AS o)" in captured.out
