"""Tests for partitions, partition indexes and partitioned tables."""

import pytest

from repro.catalog import Column, DataType, TableSchema
from repro.errors import StorageError
from repro.partitioning import HashScheme
from repro.storage import PartitionedDatabase, PartitionedTable, PartitionIndex


def make_table(n: int = 3) -> PartitionedTable:
    schema = TableSchema(
        "t",
        [Column("k", DataType.INTEGER), Column("v", DataType.VARCHAR)],
        primary_key=["k"],
    )
    return PartitionedTable(schema, HashScheme(("k",), n), n)


class TestPartition:
    def test_append_tracks_bitmaps(self):
        table = make_table()
        partition = table.partitions[0]
        partition.append((1, "a"), source_id=0, duplicate=False, has_partner=True)
        partition.append((1, "a"), source_id=0, duplicate=True, has_partner=True)
        partition.append((2, "b"), source_id=1, duplicate=False, has_partner=False)
        assert partition.row_count == 3
        assert partition.duplicate_count == 1
        assert list(partition.canonical_rows()) == [(1, "a"), (2, "b")]


class TestPartitionIndex:
    def test_add_and_lookup(self):
        index = PartitionIndex(("k",))
        index.add(5, 0)
        index.add(5, 2)
        index.add(7, 1)
        assert index.partitions_of(5) == frozenset({0, 2})
        assert index.partitions_of(7) == frozenset({1})
        assert index.partitions_of(99) == frozenset()
        assert 5 in index and 99 not in index
        assert len(index) == 2

    def test_add_all(self):
        index = PartitionIndex(("k",))
        index.add_all([1, 2, 1], 3)
        assert index.partitions_of(1) == frozenset({3})
        assert dict(index.items())[2] == frozenset({3})

    def test_as_mapping_is_snapshot(self):
        index = PartitionIndex(("k",))
        index.add(1, 0)
        snapshot = index.as_mapping()
        index.add(1, 1)
        assert snapshot[1] == frozenset({0})


class TestPartitionedTable:
    def test_row_accounting(self):
        table = make_table()
        table.partitions[0].append((1, "a"), 0)
        table.partitions[1].append((1, "a"), 0, duplicate=True)
        table.partitions[2].append((2, "b"), 1)
        assert table.total_rows == 3
        assert table.duplicate_count == 1
        assert table.canonical_row_count == 2
        assert table.max_partition_rows == 1
        assert sorted(table.canonical_rows()) == [(1, "a"), (2, "b")]

    def test_partition_index_built_and_cached(self):
        table = make_table()
        table.partitions[0].append((1, "a"), 0)
        table.partitions[2].append((1, "a"), 0, duplicate=True)
        index = table.partition_index(["k"])
        assert index.partitions_of(1) == frozenset({0, 2})
        assert table.partition_index(["k"]) is index
        table.invalidate_indexes()
        assert table.partition_index(["k"]) is not index

    def test_source_id_allocation(self):
        table = make_table()
        assert table.allocate_source_id() == 0
        assert table.allocate_source_id() == 1

    def test_byte_size(self):
        table = make_table()
        table.partitions[0].append((1, "a"), 0)
        assert table.byte_size == table.schema.row_byte_width


class TestPartitionedDatabase:
    def test_mismatched_counts_rejected(self):
        database = PartitionedDatabase(4)
        with pytest.raises(StorageError):
            database.add_table(make_table(3))

    def test_duplicate_table_rejected(self):
        database = PartitionedDatabase(3)
        database.add_table(make_table(3))
        with pytest.raises(StorageError):
            database.add_table(make_table(3))

    def test_redundancy_zero_without_duplicates(self):
        database = PartitionedDatabase(3)
        table = make_table(3)
        table.partitions[0].append((1, "a"), 0)
        table.partitions[1].append((2, "b"), 1)
        database.add_table(table)
        assert database.data_redundancy() == 0.0

    def test_redundancy_counts_duplicates(self):
        database = PartitionedDatabase(3)
        table = make_table(3)
        table.partitions[0].append((1, "a"), 0)
        table.partitions[1].append((1, "a"), 0, duplicate=True)
        database.add_table(table)
        assert database.data_redundancy() == pytest.approx(1.0)
