"""Measured locality (EXPLAIN ANALYZE) vs the design-time estimates.

:func:`repro.design.locality.edge_satisfied` predicts, from schemes
alone, which schema-graph edges join locally; an ``EXPLAIN ANALYZE`` run
measures it — a join span's ``locality`` is 1.0 exactly when no input
rows crossed node boundaries.  These tests pin the two against each
other for every locality case of paper Section 2.2:

* **case 1** — both sides hash-partitioned on the join columns;
* **case 2** — a PREF table joined with its seed on the partitioning
  predicate;
* **case 3** — a PREF table joined with its referenced table where that
  table is itself PREF (chain), plus the same three cases on the
  schema-driven TPC-H PREF configuration.

The ablation direction is covered too: with ``locality=False`` (or a
config that satisfies no edge) the same join must measure below 1.0.
"""

from __future__ import annotations

import pytest

from helpers import pref_chain_config, ref_chain_config
from repro.design.graph import SchemaGraph
from repro.design.locality import (
    config_data_locality,
    edge_satisfied,
    satisfied_edges,
)
from repro.design import SchemaDrivenDesigner
from repro.engine import SerialBackend
from repro.partitioning import HashScheme, PartitioningConfig, partition_database
from repro.partitioning.scheme import ReplicatedScheme
from repro.query import Executor
from repro.sql import sql_to_plan
from repro.workloads.tpch import ALL_QUERIES, SMALL_TABLES

JOIN_C_O = (
    "SELECT c.cname, o.total FROM customer c "
    "JOIN orders o ON c.custkey = o.custkey"
)
JOIN_O_L = (
    "SELECT o.orderkey, l.qty FROM orders o "
    "JOIN lineitem l ON o.orderkey = l.orderkey"
)


def shop_graph(database) -> SchemaGraph:
    sizes = {name: table.row_count for name, table in database.tables.items()}
    return SchemaGraph.from_schema(database.schema, sizes)


def graph_edge(graph: SchemaGraph, table_a: str, table_b: str):
    for edge in graph.edges:
        if edge.tables == {table_a, table_b}:
            return edge
    raise AssertionError(f"no edge {table_a}-{table_b}")


def traced_join(database, config, sql: str, **executor_kwargs):
    partitioned = partition_database(database, config)
    executor = Executor(partitioned, backend=SerialBackend(), **executor_kwargs)
    result = executor.execute(sql_to_plan(sql, database.schema), analyze=True)
    joins = result.trace.joins()
    assert len(joins) == 1
    return joins[0]


def test_case1_hash_hash_join_is_fully_local(shop_db):
    # Both sides hash-partitioned on the join column: locality case 1.
    config = PartitioningConfig(4)
    config.add("customer", HashScheme(("custkey",), 4))
    config.add("orders", HashScheme(("custkey",), 4))
    config.add("lineitem", HashScheme(("linekey",), 4))
    config.add("item", ReplicatedScheme(4))
    config.add("nation", ReplicatedScheme(4))
    edge = graph_edge(shop_graph(shop_db), "customer", "orders")
    assert edge_satisfied(edge, config)
    join = traced_join(shop_db, config, JOIN_C_O)
    assert join.case == "case1"
    assert join.moved_rows == 0
    assert join.locality == 1.0


def test_case2_pref_joined_with_seed(shop_db):
    # orders is PREF-partitioned by lineitem (the seed): locality case 2.
    config = pref_chain_config(4)
    edge = graph_edge(shop_graph(shop_db), "orders", "lineitem")
    assert edge_satisfied(edge, config)
    join = traced_join(shop_db, config, JOIN_O_L)
    assert join.case == "case2"
    assert join.moved_rows == 0
    assert join.locality == 1.0


def test_case3_pref_joined_with_pref_chain(shop_db):
    # customer is PREF-partitioned by orders, which is itself PREF: case 3.
    config = pref_chain_config(4)
    edge = graph_edge(shop_graph(shop_db), "customer", "orders")
    assert edge_satisfied(edge, config)
    join = traced_join(shop_db, config, JOIN_C_O)
    assert join.case == "case3"
    assert join.moved_rows == 0
    assert join.locality == 1.0


def test_case3_ref_chain_variant(shop_db):
    # The REF-like chain gives the same case 3 on lineitem JOIN orders.
    config = ref_chain_config(4)
    edge = graph_edge(shop_graph(shop_db), "orders", "lineitem")
    assert edge_satisfied(edge, config)
    join = traced_join(shop_db, config, JOIN_O_L)
    assert join.case == "case3"
    assert join.locality == 1.0


def test_unsatisfied_edge_measures_below_one(shop_db, shop_hashed):
    # All tables hashed on their own primary keys: customer-orders joins
    # on custkey, which orders is NOT partitioned by, so the estimate
    # says "not local" and the measurement agrees — rows had to move.
    _partitioned, config = shop_hashed
    edge = graph_edge(shop_graph(shop_db), "customer", "orders")
    assert not edge_satisfied(edge, config)
    join = traced_join(shop_db, config, JOIN_C_O)
    assert join.moved_rows > 0
    assert join.locality < 1.0


def test_locality_ablation_forces_movement(shop_db):
    # Same data, same satisfied edge — but with the rewriter's locality
    # cases disabled the join must fall back to shuffling, and the
    # measured locality drops below the estimate.
    config = pref_chain_config(4)
    local = traced_join(shop_db, config, JOIN_C_O)
    shuffled = traced_join(shop_db, config, JOIN_C_O, locality=False)
    assert local.locality == 1.0
    assert shuffled.case not in ("case1", "case2", "case3")
    assert shuffled.moved_rows > 0
    assert shuffled.locality < 1.0


def test_config_data_locality_matches_edge_census(shop_db):
    graph = shop_graph(shop_db)
    config = pref_chain_config(4)
    satisfied = satisfied_edges(graph, config)
    # pref_chain_config satisfies every edge: the chain covers
    # lineitem-orders, orders-customer and lineitem-item, and nation is
    # replicated (customer-nation is free).
    assert {frozenset(edge.tables) for edge in satisfied} == {
        frozenset(edge.tables) for edge in graph.edges
    }
    assert config_data_locality(graph, config) == 1.0


# -- the same agreement on the schema-driven TPC-H PREF configuration --


@pytest.fixture(scope="module")
def tpch_design(tiny_tpch):
    design = SchemaDrivenDesigner(tiny_tpch, 4).design(replicate=SMALL_TABLES)
    partitioned = partition_database(tiny_tpch, design.config)
    return design, Executor(partitioned, backend=SerialBackend())


def test_tpch_q3_measured_locality_matches_estimate(tiny_tpch, tpch_design):
    design, executor = tpch_design
    sizes = {
        name: table.row_count for name, table in tiny_tpch.tables.items()
    }
    graph = SchemaGraph.from_schema(
        tiny_tpch.schema, sizes, exclude=SMALL_TABLES
    )
    # The designer predicts both Q3 join edges local under its config.
    for pair in (("customer", "orders"), ("orders", "lineitem")):
        assert edge_satisfied(graph_edge(graph, *pair), design.config)
    result = executor.execute(ALL_QUERIES["Q3"](), analyze=True)
    joins = result.trace.joins()
    assert len(joins) == 2
    # Every join ran under a Section 2.2 locality case and, as the
    # estimate promised, moved nothing.
    assert all(j.case in ("case1", "case2", "case3") for j in joins)
    assert all(j.moved_rows == 0 for j in joins)
    assert all(j.locality == 1.0 for j in joins)


def test_tpch_cases_two_and_three_exercised(tiny_tpch):
    # The schema-driven design's seed hash column chains through every
    # PREF predicate, so its joins present as case 1 (previous test).
    # Hashing the seed on a NON-join column instead forces the rewriter
    # through the PREF cases proper: the first chain level joins its
    # seed (case 2), the second joins a table that is itself PREF
    # (case 3) — and both still measure fully local.
    from repro.partitioning import JoinPredicate, PrefScheme

    config = PartitioningConfig(4)
    config.add("lineitem", HashScheme(("l_partkey",), 4))
    config.add(
        "orders",
        PrefScheme(
            "lineitem",
            JoinPredicate.equi("orders", "o_orderkey", "lineitem", "l_orderkey"),
        ),
    )
    config.add(
        "customer",
        PrefScheme(
            "orders",
            JoinPredicate.equi("customer", "c_custkey", "orders", "o_custkey"),
        ),
    )
    for name in tiny_tpch.tables:
        if name not in config:
            config.add(name, ReplicatedScheme(4))
    partitioned = partition_database(tiny_tpch, config)
    executor = Executor(partitioned, backend=SerialBackend())
    graph = shop_graph(tiny_tpch)
    seen = {}
    for pair, sql in (
        (
            ("orders", "lineitem"),
            "SELECT l.l_orderkey FROM lineitem l "
            "JOIN orders o ON l.l_orderkey = o.o_orderkey",
        ),
        (
            ("customer", "orders"),
            "SELECT o.o_orderkey FROM orders o "
            "JOIN customer c ON o.o_custkey = c.c_custkey",
        ),
    ):
        assert edge_satisfied(graph_edge(graph, *pair), config)
        result = executor.execute(
            sql_to_plan(sql, tiny_tpch.schema), analyze=True
        )
        [join] = result.trace.joins()
        assert join.moved_rows == 0
        assert join.locality == 1.0
        seen[join.case] = join
    assert "case2" in seen
    assert "case3" in seen
