"""Tests for table/database schemas and referential constraints."""

import pytest

from repro.catalog import Column, DatabaseSchema, DataType, TableSchema
from repro.errors import CatalogError, DuplicateObjectError, UnknownObjectError


def make_schema() -> DatabaseSchema:
    schema = DatabaseSchema()
    schema.create_table(
        "parent",
        [("pk", DataType.INTEGER), ("label", DataType.VARCHAR)],
        primary_key=["pk"],
    )
    schema.create_table(
        "child",
        [("ck", DataType.INTEGER), ("parent_pk", DataType.INTEGER)],
        primary_key=["ck"],
    )
    schema.add_foreign_key("fk", "child", ["parent_pk"], "parent", ["pk"])
    return schema


class TestTableSchema:
    def test_positions_and_columns(self):
        table = TableSchema(
            "t",
            [Column("a", DataType.INTEGER), Column("b", DataType.VARCHAR)],
            primary_key=["a"],
        )
        assert table.column_names == ("a", "b")
        assert table.position("b") == 1
        assert table.positions(["b", "a"]) == (1, 0)
        assert table.column("a").dtype is DataType.INTEGER
        assert len(table) == 2

    def test_row_byte_width_sums_columns(self):
        table = TableSchema(
            "t", [Column("a", DataType.INTEGER), Column("b", DataType.BIGINT)]
        )
        assert table.row_byte_width == 12

    def test_duplicate_column_rejected(self):
        with pytest.raises(DuplicateObjectError):
            TableSchema(
                "t", [Column("a", DataType.INTEGER), Column("a", DataType.INTEGER)]
            )

    def test_unknown_pk_column_rejected(self):
        with pytest.raises(UnknownObjectError):
            TableSchema("t", [Column("a", DataType.INTEGER)], primary_key=["b"])

    def test_empty_table_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [])

    def test_unknown_column_lookup(self):
        table = TableSchema("t", [Column("a", DataType.INTEGER)])
        with pytest.raises(UnknownObjectError):
            table.position("zzz")


class TestDatabaseSchema:
    def test_tables_registered(self):
        schema = make_schema()
        assert schema.has_table("parent")
        assert set(schema.table_names) == {"parent", "child"}

    def test_duplicate_table_rejected(self):
        schema = make_schema()
        with pytest.raises(DuplicateObjectError):
            schema.create_table("parent", [("x", DataType.INTEGER)])

    def test_foreign_keys_validated(self):
        schema = make_schema()
        with pytest.raises(UnknownObjectError):
            schema.add_foreign_key("bad", "child", ["zzz"], "parent", ["pk"])
        with pytest.raises(UnknownObjectError):
            schema.add_foreign_key("bad2", "child", ["ck"], "parent", ["zzz"])

    def test_self_referencing_fk_rejected(self):
        schema = make_schema()
        with pytest.raises(CatalogError):
            schema.add_foreign_key("selfy", "child", ["parent_pk"], "child", ["ck"])

    def test_mismatched_fk_arity_rejected(self):
        schema = make_schema()
        with pytest.raises(CatalogError):
            schema.add_foreign_key(
                "bad", "child", ["ck", "parent_pk"], "parent", ["pk"]
            )

    def test_foreign_keys_of(self):
        schema = make_schema()
        assert len(schema.foreign_keys_of("parent")) == 1
        assert len(schema.foreign_keys_of("child")) == 1
        assert schema.foreign_keys_of("parent")[0].name == "fk"

    def test_drop_table_removes_fks(self):
        schema = make_schema()
        schema.drop_table("parent")
        assert not schema.has_table("parent")
        assert schema.foreign_keys == ()

    def test_restricted_to_keeps_internal_fks_only(self):
        schema = make_schema()
        schema.create_table("lonely", [("x", DataType.INTEGER)])
        restricted = schema.restricted_to(["child", "lonely"])
        assert set(restricted.table_names) == {"child", "lonely"}
        assert restricted.foreign_keys == ()
        both = schema.restricted_to(["child", "parent"])
        assert len(both.foreign_keys) == 1

    def test_restricted_to_unknown_table(self):
        schema = make_schema()
        with pytest.raises(UnknownObjectError):
            schema.restricted_to(["nope"])
