"""Tests for plan nodes, the builder, and aggregate accumulators."""

import pytest

from repro.errors import ExecutionError, PlanningError
from repro.query import Query
from repro.query.aggregates import make_accumulator
from repro.query.expressions import col, lit
from repro.query.plan import (
    Aggregate,
    AggregateSpec,
    Join,
    JoinKind,
    Scan,
)


class TestPlanNodes:
    def test_scan_alias(self):
        assert Scan("orders").name == "orders"
        assert Scan("orders", "o").name == "o"

    def test_join_validation(self):
        with pytest.raises(PlanningError):
            Join(Scan("a"), Scan("b"), (("x", "y"),), JoinKind.CROSS)
        with pytest.raises(PlanningError):
            Join(Scan("a"), Scan("b"), (), JoinKind.INNER)

    def test_join_key_accessors(self):
        join = Join(Scan("a"), Scan("b"), (("a.x", "b.y"), ("a.z", "b.w")))
        assert join.left_keys == ("a.x", "a.z")
        assert join.right_keys == ("b.y", "b.w")

    def test_aggregate_validation(self):
        with pytest.raises(PlanningError):
            Aggregate(Scan("a"), (), ())
        with pytest.raises(PlanningError):
            Aggregate(
                Scan("a"),
                (),
                (
                    AggregateSpec("sum", col("x"), "dup"),
                    AggregateSpec("count", None, "dup"),
                ),
            )

    def test_aggregate_spec_validation(self):
        with pytest.raises(PlanningError):
            AggregateSpec("median", col("x"), "m")
        with pytest.raises(PlanningError):
            AggregateSpec("sum", None, "s")

    def test_walk_and_explain(self):
        plan = (
            Query.scan("orders", alias="o")
            .where(col("o.total") > lit(1))
            .join(Query.scan("customer", alias="c"), on=[("o.custkey", "c.custkey")])
            .aggregate(group_by=["c.cname"], aggregates=[("count", None, "n")])
            .plan()
        )
        kinds = [type(node).__name__ for node in plan.walk()]
        assert kinds[0] == "Aggregate"
        assert "Join" in kinds and "Filter" in kinds
        text = plan.explain()
        assert "Scan(orders AS o)" in text
        assert "Aggregate" in text


class TestBuilder:
    def test_select_accepts_bare_names(self):
        plan = Query.scan("orders", alias="o").select(["o.custkey"]).plan()
        assert plan.outputs[0][0] == "custkey"

    def test_order_by_normalisation(self):
        plan = Query.scan("orders").order_by(["custkey", ("total", False)]).plan()
        assert plan.keys == (("custkey", True), ("total", False))

    def test_join_helpers(self):
        o, c = Query.scan("orders", alias="o"), Query.scan("customer", alias="c")
        assert o.semi_join(c, on=[("o.custkey", "c.custkey")]).plan().kind is JoinKind.SEMI
        assert o.anti_join(c, on=[("o.custkey", "c.custkey")]).plan().kind is JoinKind.ANTI
        assert o.left_join(c, on=[("o.custkey", "c.custkey")]).plan().kind is JoinKind.LEFT_OUTER
        assert o.cross_join(c).plan().kind is JoinKind.CROSS


class TestAccumulators:
    def test_sum(self):
        acc = make_accumulator("sum")
        acc.add(1)
        acc.add(None)
        acc.add(2.5)
        assert acc.result() == 3.5

    def test_sum_empty_is_null(self):
        assert make_accumulator("sum").result() is None

    def test_count_ignores_nulls(self):
        acc = make_accumulator("count")
        acc.add(1)
        acc.add(None)
        acc.add("x")
        assert acc.result() == 2

    def test_avg(self):
        acc = make_accumulator("avg")
        for value in (2, 4, None, 6):
            acc.add(value)
        assert acc.result() == 4.0
        assert make_accumulator("avg").result() is None

    def test_min_max(self):
        low, high = make_accumulator("min"), make_accumulator("max")
        for value in (5, None, 1, 9):
            low.add(value)
            high.add(value)
        assert low.result() == 1
        assert high.result() == 9

    def test_count_distinct(self):
        acc = make_accumulator("count_distinct")
        for value in (1, 2, 2, None, 1):
            acc.add(value)
        assert acc.result() == 2

    def test_merge_states(self):
        for func, values_a, values_b, expected in [
            ("sum", [1, 2], [3], 6),
            ("count", [1, 2], [3], 3),
            ("avg", [2], [4, 6], 4.0),
            ("min", [5], [1], 1),
            ("max", [5], [9], 9),
            ("count_distinct", [1, 2], [2, 3], 3),
        ]:
            first, second = make_accumulator(func), make_accumulator(func)
            for value in values_a:
                first.add(value)
            for value in values_b:
                second.add(value)
            first.merge_state(second.state())
            assert first.result() == expected, func

    def test_unknown_function(self):
        with pytest.raises(ExecutionError):
            make_accumulator("median")

    def test_state_bytes_positive(self):
        for func in ("sum", "count", "avg", "min", "max", "count_distinct"):
            assert make_accumulator(func).state_bytes() > 0
