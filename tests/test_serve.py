"""The serving layer: normalisation, caches, epochs, admission, server.

Unit coverage for each serving component plus end-to-end server tests
over a small shop cluster.  The cache-staleness "teeth" tests stub out
the invalidation mechanism (the pre-feature behaviour) and assert the
stale answer actually diverges — proving epoch invalidation is the
load-bearing correctness mechanism, not redundant belt-and-braces.
"""

from __future__ import annotations

import pytest
from helpers import assert_same_rows, shop_database, shop_schema
from repro.cluster import SimulatedCluster
from repro.errors import (
    AdmissionError,
    QueryTimeoutError,
    SqlError,
)
from repro.obs.metrics import Histogram, LATENCY_BUCKETS
from repro.partitioning import (
    HashScheme,
    JoinPredicate,
    PartitioningConfig,
    PrefScheme,
    ReplicatedScheme,
)
from repro.query import Query
from repro.query.plan import referenced_tables
from repro.serve import (
    ClusterServer,
    EpochTracker,
    TableDependentCache,
    normalize_sql,
)


def _config(n: int = 4) -> PartitioningConfig:
    config = PartitioningConfig(n)
    config.add("orders", HashScheme(("orderkey",), n))
    config.add(
        "customer",
        PrefScheme(
            "orders",
            JoinPredicate.equi("customer", "custkey", "orders", "custkey"),
        ),
    )
    config.add(
        "lineitem",
        PrefScheme(
            "orders",
            JoinPredicate.equi("lineitem", "orderkey", "orders", "orderkey"),
        ),
    )
    config.add("item", HashScheme(("itemkey",), n))
    config.add("nation", ReplicatedScheme(n))
    return config


@pytest.fixture()
def server():
    cluster = SimulatedCluster.partition(
        shop_database(seed=3), _config(), backend="serial"
    )
    server = cluster.serve(max_inflight=2, queue_depth=64)
    yield server
    server.close()
    cluster.close()


class TestNormalizeSql:
    def test_whitespace_and_keyword_case_collapse(self):
        a = normalize_sql("SELECT  o.total FROM orders o\n WHERE o.total > 1")
        b = normalize_sql("select o.total from orders o where o.total > 1")
        assert a == b

    def test_identifier_case_is_significant(self):
        assert normalize_sql("SELECT a FROM t") != normalize_sql(
            "SELECT A FROM t"
        )

    def test_literals_are_significant(self):
        assert normalize_sql("SELECT a FROM t WHERE a > 1") != normalize_sql(
            "SELECT a FROM t WHERE a > 2"
        )

    def test_string_literals_requoted(self):
        # Inner whitespace of the literal survives; surrounding layout
        # collapses.
        assert (
            normalize_sql("SELECT a FROM t\n WHERE b='x  y'")
            == "select a from t where b = 'x  y'"
        )


class TestTableDependentCache:
    def test_lru_eviction_order(self):
        cache = TableDependentCache(2)
        cache.put("a", 1, frozenset({"t"}))
        cache.put("b", 2, frozenset({"t"}))
        assert cache.get("a") == 1  # refreshes a's recency
        cache.put("c", 3, frozenset({"t"}))  # evicts b, not a
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_invalidate_table_drops_only_dependents(self):
        cache = TableDependentCache(8)
        cache.put("q1", 1, frozenset({"orders", "customer"}))
        cache.put("q2", 2, frozenset({"item"}))
        dropped = cache.invalidate_table("orders")
        assert dropped == 1
        assert cache.get("q1") is None
        assert cache.get("q2") == 2
        assert cache.stats.invalidations == 1

    def test_zero_capacity_disables(self):
        cache = TableDependentCache(0)
        cache.put("a", 1, frozenset({"t"}))
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_replacement_reindexes_dependencies(self):
        cache = TableDependentCache(4)
        cache.put("q", 1, frozenset({"orders"}))
        cache.put("q", 2, frozenset({"item"}))  # same key, new deps
        assert cache.invalidate_table("orders") == 0
        assert cache.get("q") == 2
        assert cache.invalidate_table("item") == 1
        assert cache.get("q") is None


class TestEpochTracker:
    def test_closure_follows_pref_references(self):
        tracker = EpochTracker(_config())
        # customer and lineitem both PREF-reference orders: a write to
        # orders can propagate copies/hasS flips into both.
        assert tracker.closure("orders") == frozenset(
            {"orders", "customer", "lineitem"}
        )
        assert tracker.closure("item") == frozenset({"item"})

    def test_bump_advances_the_closure(self):
        tracker = EpochTracker(_config())
        affected = tracker.bump(["orders"])
        assert affected == frozenset({"orders", "customer", "lineitem"})
        assert tracker.current("customer") == 1
        assert tracker.current("item") == 0
        assert tracker.snapshot(["orders", "item"]) == {
            "orders": 1,
            "item": 0,
        }


class TestReferencedTables:
    def test_scan_leaves_collected(self):
        plan = (
            Query.scan("customer", alias="c")
            .join(
                Query.scan("orders", alias="o"),
                on=[("c.custkey", "o.custkey")],
            )
            .select(["c.cname"])
            .plan()
        )
        assert referenced_tables(plan) == frozenset({"customer", "orders"})


class TestHistogramQuantile:
    def test_quantiles_from_buckets(self):
        histogram = Histogram("t", LATENCY_BUCKETS)
        for value in (0.0001, 0.0001, 0.0001, 0.2):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 0.0002  # bucket upper bound
        assert histogram.quantile(0.99) == 0.25

    def test_overflow_bucket_returns_largest_finite_bound(self):
        histogram = Histogram("t", (1.0, float("inf")))
        histogram.observe(50.0)
        assert histogram.quantile(0.99) == 1.0

    def test_empty_and_invalid(self):
        histogram = Histogram("t", LATENCY_BUCKETS)
        assert histogram.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            histogram.quantile(0.0)


COUNT_SQL = "SELECT COUNT(*) AS n FROM orders o"
JOIN_SQL = (
    "SELECT c.cname, SUM(o.total) AS spent FROM customer c "
    "JOIN orders o ON c.custkey = o.custkey GROUP BY c.cname"
)


class TestClusterServer:
    def test_results_match_direct_execution(self, server):
        direct = server.cluster.sql(JOIN_SQL)
        served = server.execute(JOIN_SQL)
        assert served.columns == direct.columns
        assert_same_rows(served.rows, direct.rows)

    def test_result_cache_hit_and_metrics(self, server):
        first = server.execute(COUNT_SQL)
        ticket = server.submit("select count(*) AS n  from orders o")
        second = ticket.result()
        assert ticket.cache_hit == "result"
        assert second.rows == first.rows
        summary = server.metrics_summary()
        assert summary["result_cache"]["hits"] == 1
        assert summary["result_cache"]["hit_rate"] > 0
        assert summary["completed"] == 2
        assert summary["latency"]["count"] == 2

    def test_plan_cache_serves_changed_literals_separately(self, server):
        a = server.execute("SELECT COUNT(*) AS n FROM orders o WHERE o.total > 10")
        b = server.execute("SELECT COUNT(*) AS n FROM orders o WHERE o.total > 1000")
        assert a.rows[0][0] >= b.rows[0][0]
        assert server.plan_cache.stats.misses == 2

    def test_plan_cache_hit_after_result_invalidation(self, server):
        server.execute(COUNT_SQL)
        # Drop only the result cache: re-execution should reuse the plan.
        server.result_cache.clear()
        ticket = server.submit(COUNT_SQL)
        ticket.result()
        assert ticket.cache_hit == "plan"
        assert server.plan_cache.stats.hits == 1

    def test_cached_result_rows_are_private_copies(self, server):
        first = server.execute(COUNT_SQL)
        first.rows.append(("tampered",))
        second = server.execute(COUNT_SQL)
        assert ("tampered",) not in second.rows

    def test_write_invalidates_dependent_results(self, server):
        stale = server.execute(COUNT_SQL)
        server.insert("orders", [(9001, 1, 42.0)])
        fresh = server.execute(COUNT_SQL)
        assert fresh.rows[0][0] == stale.rows[0][0] + 1
        assert server.metrics_summary()["result_cache"]["invalidations"] >= 1

    def test_write_closure_invalidates_pref_referencers(self, server):
        customer_sql = (
            "SELECT COUNT(*) AS n FROM customer c WHERE c.custkey >= 0"
        )
        server.execute(customer_sql)
        assert len(server.result_cache) == 1
        # customer PREF-references orders: loading orders must drop the
        # customer-derived entry too (propagation can move copies).
        server.insert("orders", [(9002, 2, 1.0)])
        assert len(server.result_cache) == 0

    def test_unrelated_table_entries_survive_writes(self, server):
        item_sql = "SELECT COUNT(*) AS n FROM item i"
        server.execute(item_sql)
        server.insert("orders", [(9003, 3, 1.0)])
        ticket = server.submit(item_sql)
        ticket.result()
        assert ticket.cache_hit == "result"

    def test_explain_passthrough_uncached(self, server):
        result = server.execute(f"EXPLAIN {COUNT_SQL}")
        assert result.columns == ("plan",)
        assert len(server.result_cache) == 0

    def test_analyze_bypasses_result_cache_but_carries_trace(self, server):
        server.execute(COUNT_SQL)
        analyzed = server.execute(COUNT_SQL, analyze=True)
        # The analyze run is never served from (or installed into) the
        # result cache: it must carry a real trace from a real execution.
        assert analyzed.trace is not None
        assert server.result_cache.stats.hits == 0

    def test_plan_node_submission(self, server):
        plan = (
            Query.scan("orders", alias="o")
            .aggregate(aggregates=[("count", None, "n")])
            .plan()
        )
        direct = server.cluster.run(plan)
        served = server.execute(plan)
        assert served.rows == direct.rows

    def test_sql_errors_propagate(self, server):
        with pytest.raises(SqlError):
            server.execute("SELECT * FROM nonexistent")
        assert server.metrics_summary()["errors"] == 1

    def test_closed_server_rejects(self, server):
        server.close()
        with pytest.raises(AdmissionError):
            server.submit(COUNT_SQL)

    def test_sessions_are_distinguishable(self, server):
        a = server.session("app-a")
        b = server.session("app-b")
        a.execute(COUNT_SQL)
        b.execute(COUNT_SQL)
        assert a.submitted == 1
        assert b.submitted == 1
        assert a.session_id != b.session_id


class TestAdmissionControl:
    def test_queue_overflow_rejected(self):
        cluster = SimulatedCluster.partition(
            shop_database(seed=3), _config(), backend="serial"
        )
        server = ClusterServer(cluster, max_inflight=1, queue_depth=1)
        # Not started: nothing drains the queue, so the second submit
        # must overflow the bounded queue deterministically.
        server._started = True  # pretend workers exist; none consume
        try:
            server.submit(COUNT_SQL)
            with pytest.raises(AdmissionError):
                server.submit(COUNT_SQL)
            assert (
                server.metrics_summary()["admission"]["rejected"] == 1
            )
        finally:
            server._started = False
            server.close()
            cluster.close()

    def test_deadline_expired_in_queue_rejected(self):
        cluster = SimulatedCluster.partition(
            shop_database(seed=3), _config(), backend="serial"
        )
        server = ClusterServer(
            cluster, max_inflight=1, queue_depth=8, queue_timeout=0.001
        )
        server._started = True  # hold the queue: no worker consumes yet
        ticket = server.submit(COUNT_SQL)
        import time

        time.sleep(0.05)  # let the deadline lapse while queued
        server._started = False
        server.start()  # now let workers drain it
        try:
            with pytest.raises(QueryTimeoutError):
                ticket.result(timeout=5)
            assert server.metrics_summary()["admission"]["timeouts"] == 1
        finally:
            server.close()
            cluster.close()

    def test_invalid_parameters_rejected(self):
        cluster = SimulatedCluster.partition(
            shop_database(seed=3), _config(), backend="serial"
        )
        try:
            with pytest.raises(ValueError):
                ClusterServer(cluster, max_inflight=0)
            with pytest.raises(ValueError):
                ClusterServer(cluster, queue_timeout=0)
        finally:
            cluster.close()


class TestRegressionHasTeeth:
    """Stub the invalidation mechanisms out and prove staleness appears."""

    def test_stale_result_cache_without_epoch_bump(self, monkeypatch):
        cluster = SimulatedCluster.partition(
            shop_database(seed=3), _config(), backend="serial"
        )
        server = cluster.serve(max_inflight=1)
        monkeypatch.setattr(
            ClusterServer, "_bump", lambda self, tables: frozenset()
        )
        try:
            before = server.execute(COUNT_SQL)
            server.insert("orders", [(9100, 1, 1.0)])
            stale = server.execute(COUNT_SQL)
            # The no-op-invalidation variant serves the stale count: the
            # newly loaded row is invisible.  This is exactly the bug the
            # epoch mechanism exists to prevent.
            assert stale.rows == before.rows
            fresh = cluster.sql(COUNT_SQL)
            assert fresh.rows[0][0] == before.rows[0][0] + 1
        finally:
            server.close()
            cluster.close()

    def test_epoch_bump_fixes_the_same_sequence(self):
        cluster = SimulatedCluster.partition(
            shop_database(seed=3), _config(), backend="serial"
        )
        server = cluster.serve(max_inflight=1)
        try:
            before = server.execute(COUNT_SQL)
            server.insert("orders", [(9100, 1, 1.0)])
            after = server.execute(COUNT_SQL)
            assert after.rows[0][0] == before.rows[0][0] + 1
        finally:
            server.close()
            cluster.close()


class TestServeMatchesFreshCluster:
    def test_cached_workload_equals_fresh_cluster_after_loads(self):
        """query -> cached -> bulk load -> re-query must equal a cluster
        built fresh from the final data (the serving-layer analogue of
        the partition-cache staleness tests)."""
        new_orders = [(9200, 1, 5.0), (9201, 2, 6.0)]
        cluster = SimulatedCluster.partition(
            shop_database(seed=3), _config(), backend="serial"
        )
        server = cluster.serve(max_inflight=2)
        try:
            server.execute(JOIN_SQL)  # warm both caches
            server.execute(COUNT_SQL)
            server.load({"orders": new_orders})
            served_join = server.execute(JOIN_SQL)
            served_count = server.execute(COUNT_SQL)
        finally:
            server.close()
            cluster.close()
        fresh_db = shop_database(seed=3)
        fresh_db.load("orders", new_orders)
        fresh = SimulatedCluster.partition(fresh_db, _config(), backend="serial")
        try:
            assert_same_rows(served_join.rows, fresh.sql(JOIN_SQL).rows)
            assert served_count.rows == fresh.sql(COUNT_SQL).rows
        finally:
            fresh.close()


def test_shop_schema_unchanged_guard():
    """The serve tests hand-write rows for the shop schema; fail loudly
    here (not deep in a worker thread) if its shape changes."""
    schema = shop_schema()
    assert [c.name for c in schema.table("orders").columns] == [
        "orderkey",
        "custkey",
        "total",
    ]
