"""ColumnBatch round-trips, sort-key totality, batch-size invariance."""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import (
    all_hashed_config,
    pref_chain_config,
    shop_database,
    shop_schema,
)
from repro.engine.rows import ColumnBatch, _sort_key
from repro.partitioning import partition_database
from repro.query import Executor, LocalExecutor, Query
from repro.query.expressions import col, lit
from repro.storage import Database

# -- round trip: rows -> columns -> rows ------------------------------------

sql_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=8),
)


@st.composite
def row_sets(draw):
    """A rectangular list of rows (possibly zero rows and/or columns)."""
    width = draw(st.integers(min_value=0, max_value=4))
    count = draw(st.integers(min_value=0, max_value=12))
    rows = [
        tuple(draw(sql_values) for _ in range(width)) for _ in range(count)
    ]
    return rows, width


@given(row_sets())
@settings(max_examples=200, deadline=None)
def test_round_trip_is_lossless(case):
    rows, width = case
    batch = ColumnBatch.from_rows(rows, width)
    assert batch.length == len(rows)
    assert batch.width == width
    assert batch.to_rows() == rows
    assert list(batch.iter_rows()) == rows
    for index in range(width):
        assert list(batch.validity(index)) == [
            0 if row[index] is None else 1 for row in rows
        ]
        assert batch.has_nulls(index) == any(
            row[index] is None for row in rows
        )
    clone = pickle.loads(pickle.dumps(batch))
    assert clone == batch
    assert clone.to_rows() == rows


def test_round_trip_hidden_dup_bits():
    # PREF scans attach the dup/hasS bitmaps as trailing 0/1 int columns;
    # they must survive the transposes bit-for-bit (0 stays int 0, never
    # None or False).
    rows = [("a", 1, 0, 1), ("b", None, 1, 1), ("c", 3, 0, 0)]
    batch = ColumnBatch.from_rows(rows, 4)
    assert batch.to_rows() == rows
    assert batch.columns[2] == [0, 1, 0]
    assert all(type(bit) is int for bit in batch.columns[2])


def test_empty_and_zero_column_batches():
    empty = ColumnBatch.empty(3)
    assert empty.length == 0 and empty.width == 3
    assert empty.to_rows() == []
    assert ColumnBatch.from_rows([], 3).to_rows() == []
    # Zero-column batches still know their cardinality (scalar aggregate
    # inputs project away every column but must keep the row count).
    no_cols = ColumnBatch([], 5)
    assert no_cols.length == 5
    assert no_cols.to_rows() == [()] * 5
    assert no_cols.key_tuples(()) == [()] * 5
    assert pickle.loads(pickle.dumps(no_cols)).length == 5


def test_transform_sanity():
    rows = [(i, f"s{i % 3}", None if i % 4 == 0 else i * 0.5) for i in range(10)]
    batch = ColumnBatch.from_rows(rows, 3)
    assert batch.select([2, 0]).to_rows() == [(r[2], r[0]) for r in rows]
    assert batch.slice(2, 5).to_rows() == rows[2:5]
    chunked = [chunk.to_rows() for chunk in batch.chunks(4)]
    assert sum(chunked, []) == rows
    mask = [i % 2 for i in range(10)]
    assert batch.compress(mask).to_rows() == rows[1::2]
    assert batch.take([3, 3, 0]).to_rows() == [rows[3], rows[3], rows[0]]


# -- _sort_key: total order over mixed-type columns --------------------------


def test_sort_key_is_total_over_mixed_types():
    values = [None, True, -7, 3, 2.5, float("nan"), "", "a", "z", b"x", (1, 2)]
    ranked = sorted(values, key=_sort_key)  # must not raise TypeError
    assert ranked[0] is None
    nan_pos = next(i for i, v in enumerate(ranked) if v != v)
    number_positions = [
        i
        for i, v in enumerate(ranked)
        if isinstance(v, (int, float, bool)) and v == v
    ]
    string_positions = [i for i, v in enumerate(ranked) if isinstance(v, str)]
    assert max(number_positions) < nan_pos < min(string_positions)
    # Keys are distinct here, so every permutation must sort identically
    # (antisymmetry: 3 < "a" and "a" < 3 cannot both hold).
    import random

    rng = random.Random(11)
    for _ in range(20):
        shuffled = list(values)
        rng.shuffle(shuffled)
        assert sorted(shuffled, key=_sort_key) == ranked


def test_order_by_mixed_int_string_column():
    # Regression: ORDER BY over a column holding both ints and strings
    # used to raise TypeError inside sorted(); _sort_key ranks by type.
    database = Database(shop_schema())
    mixed = [3, "apple", None, 7, "zed", 1, "apple"]
    database.load(
        "nation", [(i, value) for i, value in enumerate(mixed)]
    )
    partitioned = partition_database(database, all_hashed_config(3))
    plan = (
        Query.scan("nation", alias="n")
        .select(["n.nname"])
        .order_by(["nname"])
        .plan()
    )
    result = Executor(partitioned).execute(plan)
    expected = [(value,) for value in sorted(mixed, key=_sort_key)]
    assert result.rows == expected
    assert LocalExecutor(database).execute(plan).rows == expected


# -- batch size is a pure granularity knob -----------------------------------


def _invariance_plans():
    l = Query.scan("lineitem", alias="l")
    o = Query.scan("orders", alias="o")
    c = Query.scan("customer", alias="c")
    yield o.where(col("o.total") > lit(50.0)).aggregate(
        aggregates=[("count", None, "cnt"), ("sum", col("o.total"), "s")]
    ).plan()
    yield c.join(o, on=[("c.custkey", "o.custkey")]).join(
        l, on=[("o.orderkey", "l.orderkey")]
    ).aggregate(
        group_by=["c.cname"], aggregates=[("sum", col("l.qty"), "q")]
    ).order_by(["c.cname"]).plan()
    yield o.select(["o.custkey"], distinct=True).order_by(["custkey"]).plan()


@pytest.mark.parametrize("batch_size", [1, 7, 4096])
def test_batch_size_invariance(batch_size):
    database = shop_database(seed=7)
    partitioned = partition_database(database, pref_chain_config(4))
    reference = Executor(partitioned)  # DEFAULT_BATCH_SIZE
    probe = Executor(partitioned, batch_size=batch_size)
    for plan in _invariance_plans():
        expected = reference.execute(plan, analyze=True)
        actual = probe.execute(plan, analyze=True)
        assert actual.rows == expected.rows
        # Identical canonical traces: same rows through the same
        # operators with the same exchange accounting, independent of
        # the chunking granularity.
        assert actual.trace.canonical() == expected.trace.canonical()


def test_batch_size_must_be_positive():
    database = shop_database(seed=7)
    partitioned = partition_database(database, pref_chain_config(4))
    with pytest.raises(ValueError):
        Executor(partitioned, batch_size=0)
