"""The fuzz differ's span-tree oracle: broken counters must be caught.

``ExecutionStats`` canonicalisation cannot see per-operator output
counts (they are breakdown-only), so a backend that miscounts
``rows_out`` in a worker delta would slip past the stats check.  The
span-tree oracle closes that hole: these tests deliberately break the
accounting and assert the differ reports a ``backend_trace`` divergence
naming the offending operator.
"""

from __future__ import annotations

import copy

from helpers import pref_chain_config, shop_database
from repro.engine import SerialBackend
from repro.engine.context import ContextDelta
from repro.fuzz.differ import span_tree_diff, span_trees_equal
from repro.fuzz.generator import generate_case
from repro.fuzz.runner import run_case
from repro.partitioning import partition_database
from repro.query import Executor
from repro.sql import sql_to_plan

SQL = (
    "SELECT c.cname, o.total FROM customer c "
    "JOIN orders o ON c.custkey = o.custkey"
)


def _trace(executor, schema):
    return executor.execute(sql_to_plan(SQL, schema), analyze=True).trace


def test_span_trees_equal_reflexive_and_none_safe():
    database = shop_database(seed=7)
    partitioned = partition_database(database, pref_chain_config(4))
    executor = Executor(partitioned, backend=SerialBackend())
    first = _trace(executor, database.schema)
    second = _trace(executor, database.schema)
    # Timings differ between the two runs, canonical trees do not.
    assert span_trees_equal(first, second)
    assert span_trees_equal(None, None)
    assert not span_trees_equal(first, None)
    assert not span_trees_equal(None, second)


def test_perturbed_counter_detected_and_named():
    database = shop_database(seed=7)
    partitioned = partition_database(database, pref_chain_config(4))
    executor = Executor(partitioned, backend=SerialBackend())
    reference = _trace(executor, database.schema)
    broken = copy.deepcopy(_trace(executor, database.schema))
    [join] = broken.joins()
    join.rows_out += 1
    assert not span_trees_equal(reference, broken)
    report = span_tree_diff("serial", reference, "broken", broken)
    assert f"op {join.op_id}" in report
    assert join.label in report
    # An operator missing entirely is reported as one-sided.
    pruned = copy.deepcopy(reference)
    pruned.root.children = ()
    report = span_tree_diff("serial", reference, "pruned", pruned)
    assert "only in serial" in report


def test_runner_catches_broken_worker_delta(monkeypatch):
    # Under-counting rows_out in the process backend's worker deltas is
    # invisible to the stats check (rows_out is breakdown-only) — the
    # span-tree oracle must flag it as a backend_trace divergence.
    case = generate_case(seed=11, index=0)
    assert (
        run_case(case, backends=("serial", "process"), check_sqlite=False)
        is None
    )

    real_add_output = ContextDelta.add_output

    def lying_add_output(self, op, rows, partition=0):
        real_add_output(self, op, rows + 1, partition=partition)

    monkeypatch.setattr(ContextDelta, "add_output", lying_add_output)
    divergence = run_case(
        case, backends=("serial", "process"), check_sqlite=False
    )
    assert divergence is not None
    assert divergence.kind == "backend_trace"
    assert "span tree differs from serial" in divergence.detail
    assert "rows_out" in divergence.detail
