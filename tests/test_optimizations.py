"""The hasS/dup-index optimizations of Section 2.2 (Figure 9 semantics)."""

from helpers import assert_same_rows
from repro.partitioning import HashScheme, PartitioningConfig, PrefScheme
from repro.partitioning import JoinPredicate, partition_database
from repro.query import Executor, LocalExecutor, Query


def customer_orders_partitioned(shop_db, n=6):
    config = PartitioningConfig(n)
    config.add("orders", HashScheme(("orderkey",), n))
    config.add(
        "customer",
        PrefScheme(
            "orders",
            JoinPredicate.equi("customer", "custkey", "orders", "custkey"),
        ),
    )
    return partition_database(shop_db, config)


class TestAntiJoinOptimization:
    def test_results_agree_with_and_without(self, shop_db):
        partitioned = customer_orders_partitioned(shop_db)
        plan = (
            Query.scan("customer", alias="c")
            .anti_join(
                Query.scan("orders", alias="o"), on=[("c.custkey", "o.custkey")]
            )
            .aggregate(aggregates=[("count", None, "cnt")])
            .plan()
        )
        local = LocalExecutor(shop_db).execute(plan).rows
        with_opt = Executor(partitioned, optimizations=True).execute(plan)
        without = Executor(partitioned, optimizations=False).execute(plan)
        assert_same_rows(with_opt.rows, local)
        assert_same_rows(without.rows, local)

    def test_optimized_anti_join_avoids_join_work(self, shop_db):
        partitioned = customer_orders_partitioned(shop_db)
        plan = (
            Query.scan("customer", alias="c")
            .anti_join(
                Query.scan("orders", alias="o"), on=[("c.custkey", "o.custkey")]
            )
            .aggregate(aggregates=[("count", None, "cnt")])
            .plan()
        )
        with_opt = Executor(partitioned, optimizations=True).execute(plan)
        without = Executor(partitioned, optimizations=False).execute(plan)
        # Without the hasS rewrite the anti join runs as a remote
        # NOT-EXISTS nested loop: orders of magnitude more row work.
        assert without.stats.rows_processed > 5 * with_opt.stats.rows_processed


class TestSemiJoinOptimization:
    def test_results_agree(self, shop_db):
        partitioned = customer_orders_partitioned(shop_db)
        plan = (
            Query.scan("customer", alias="c")
            .semi_join(
                Query.scan("orders", alias="o"), on=[("c.custkey", "o.custkey")]
            )
            .aggregate(aggregates=[("count", None, "cnt")])
            .plan()
        )
        local = LocalExecutor(shop_db).execute(plan).rows
        assert_same_rows(
            Executor(partitioned, optimizations=True).execute(plan).rows, local
        )
        assert_same_rows(
            Executor(partitioned, optimizations=False).execute(plan).rows, local
        )

    def test_optimized_semi_join_is_cheaper(self, shop_db):
        partitioned = customer_orders_partitioned(shop_db)
        plan = (
            Query.scan("customer", alias="c")
            .semi_join(
                Query.scan("orders", alias="o"), on=[("c.custkey", "o.custkey")]
            )
            .aggregate(aggregates=[("count", None, "cnt")])
            .plan()
        )
        with_opt = Executor(partitioned, optimizations=True).execute(plan)
        without = Executor(partitioned, optimizations=False).execute(plan)
        assert without.stats.rows_processed > with_opt.stats.rows_processed


class TestDistinctViaDupIndex:
    def test_count_via_dup_index_needs_no_network(self, shop_db):
        partitioned = customer_orders_partitioned(shop_db)
        executor = Executor(partitioned)
        # Counting base tuples uses the dup index: a purely local plan up
        # to the scalar aggregate.
        count_plan = (
            Query.scan("customer", alias="c")
            .aggregate(aggregates=[("count", None, "cnt")])
            .plan()
        )
        result = executor.execute(count_plan)
        assert result.rows == [(shop_db.table("customer").row_count,)]
        # The value-based DISTINCT alternative ships rows around.
        distinct_plan = (
            Query.scan("customer", alias="c")
            .select(["c.custkey", "c.cname"], distinct=True)
            .aggregate(aggregates=[("count", None, "cnt")])
            .plan()
        )
        distinct_result = executor.execute(distinct_plan)
        assert distinct_result.rows == result.rows
        assert distinct_result.stats.network_bytes > result.stats.network_bytes

    def test_dedup_keeps_exactly_one_copy_per_base_tuple(self, shop_db):
        partitioned = customer_orders_partitioned(shop_db)
        executor = Executor(partitioned)
        result = executor.execute(Query.scan("customer", alias="c").plan())
        keys = [row[0] for row in result.rows]
        assert len(keys) == len(set(keys))
        assert set(keys) == set(
            row[0] for row in shop_db.table("customer").rows
        )
