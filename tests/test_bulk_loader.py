"""Tests for incremental bulk loading (paper Section 2.3)."""

import pytest

from helpers import pref_chain_config, ref_chain_config, shop_schema
from repro.errors import BulkLoadError
from repro.partitioning import (
    BulkLoader,
    check_pref_invariants,
    partition_database,
)
from repro.storage import Database


def empty_shop() -> Database:
    return Database(shop_schema())


class TestInserts:
    def test_insert_into_seed_table(self):
        database = empty_shop()
        config = pref_chain_config(4)
        partitioned = partition_database(database, config)
        loader = BulkLoader(partitioned, config)
        stats = loader.insert("lineitem", [(i, i % 3, i % 2, 1) for i in range(20)])
        assert stats.rows_in == 20
        assert stats.copies_written == 20
        assert partitioned.table("lineitem").total_rows == 20

    def test_pref_insert_uses_partition_index(self):
        database = empty_shop()
        config = pref_chain_config(4)
        partitioned = partition_database(database, config)
        loader = BulkLoader(partitioned, config)
        loader.insert("lineitem", [(0, 1, 0, 1), (1, 1, 0, 1), (2, 2, 0, 1)])
        stats = loader.insert("orders", [(1, 5, 10.0), (2, 6, 20.0)])
        assert stats.index_lookups == 2
        check_pref_invariants(partitioned, config)

    def test_pref_insert_duplicates_across_partitions(self):
        database = empty_shop()
        config = pref_chain_config(4)
        partitioned = partition_database(database, config)
        loader = BulkLoader(partitioned, config)
        # Put lineitems of order 7 into several partitions by choosing
        # linekeys that hash apart.
        loader.insert("lineitem", [(i, 7, 0, 1) for i in range(8)])
        line_partitions = {
            p.partition_id
            for p in partitioned.table("lineitem").partitions
            if p.row_count
        }
        stats = loader.insert("orders", [(7, 1, 5.0)])
        assert stats.copies_written == len(line_partitions)
        check_pref_invariants(partitioned, config)

    def test_orphan_insert_goes_round_robin(self):
        database = empty_shop()
        config = pref_chain_config(4)
        partitioned = partition_database(database, config)
        loader = BulkLoader(partitioned, config)
        stats = loader.insert("orders", [(99, 1, 1.0), (98, 1, 1.0)])
        assert stats.copies_written == 2
        orders = partitioned.table("orders")
        assert orders.total_rows == 2
        for partition in orders.partitions:
            for index in range(partition.row_count):
                assert not partition.has_partner[index]

    def test_replicated_insert_goes_everywhere(self):
        database = empty_shop()
        config = pref_chain_config(4)
        partitioned = partition_database(database, config)
        loader = BulkLoader(partitioned, config)
        stats = loader.insert("nation", [(1, "nowhere")])
        assert stats.copies_written == 4
        assert partitioned.table("nation").total_rows == 4
        assert partitioned.table("nation").canonical_row_count == 1

    def test_load_batches_in_fk_order(self, shop_db):
        config = pref_chain_config(4)
        partitioned = partition_database(Database(shop_schema()), config)
        loader = BulkLoader(partitioned, config)
        batches = {
            name: list(shop_db.table(name).rows) for name in config.tables
        }
        stats = loader.load(batches)
        assert stats.rows_in == shop_db.total_rows
        check_pref_invariants(partitioned, config)


class TestReferencedSideMaintenance:
    def test_new_partner_attracts_existing_referencing_tuple(self):
        database = empty_shop()
        config = pref_chain_config(4)
        partitioned = partition_database(database, config)
        loader = BulkLoader(partitioned, config)
        # Order 7 arrives first with no lineitems: round-robin orphan.
        loader.insert("orders", [(7, 1, 5.0)])
        # Now its lineitems arrive, in partitions the order may not be in.
        stats = loader.insert("lineitem", [(i, 7, 0, 1) for i in range(8)])
        assert stats.propagated_copies >= 1
        check_pref_invariants(partitioned, config)
        # hasS must now be set on every copy of order 7.
        orders = partitioned.table("orders")
        for partition in orders.partitions:
            for index, row in enumerate(partition.rows):
                if row[0] == 7:
                    assert partition.has_partner[index]

    def test_maintenance_cascades_down_chains(self):
        database = empty_shop()
        config = pref_chain_config(4)
        partitioned = partition_database(database, config)
        loader = BulkLoader(partitioned, config)
        loader.insert("customer", [(1, "A", 0)])
        loader.insert("orders", [(10, 1, 5.0)])
        loader.insert("lineitem", [(i, 10, 0, 1) for i in range(8)])
        check_pref_invariants(partitioned, config)

    def test_maintenance_can_be_disabled(self):
        database = empty_shop()
        config = pref_chain_config(4)
        partitioned = partition_database(database, config)
        loader = BulkLoader(partitioned, config)
        loader.insert("orders", [(7, 1, 5.0)])
        stats = loader.insert(
            "lineitem",
            [(i, 7, 0, 1) for i in range(8)],
            maintain_referencing=False,
        )
        assert stats.propagated_copies == 0


class TestUpdatesAndDeletes:
    def test_delete_applies_to_all_partitions(self, shop_db):
        config = pref_chain_config(4)
        partitioned = partition_database(shop_db, config)
        loader = BulkLoader(partitioned, config)
        before = partitioned.table("customer").total_rows
        removed = loader.delete("customer", lambda row: row[0] == 1)
        assert removed >= 1
        assert partitioned.table("customer").total_rows == before - removed
        for partition in partitioned.table("customer").partitions:
            assert all(row[0] != 1 for row in partition.rows)

    def test_update_rewrites_all_copies(self, shop_db):
        config = pref_chain_config(4)
        partitioned = partition_database(shop_db, config)
        loader = BulkLoader(partitioned, config)
        updated = loader.update(
            "customer",
            where=lambda row: row[0] == 1,
            assign=lambda row: (row[0], "RENAMED", row[2]),
        )
        assert updated >= 1
        names = {
            row[1]
            for partition in partitioned.table("customer").partitions
            for row in partition.rows
            if row[0] == 1
        }
        assert names == {"RENAMED"}

    def test_update_of_predicate_column_rejected(self, shop_db):
        config = pref_chain_config(4)
        partitioned = partition_database(shop_db, config)
        loader = BulkLoader(partitioned, config)
        with pytest.raises(BulkLoadError):
            loader.update(
                "customer",
                where=lambda row: row[0] == 1,
                assign=lambda row: (999, row[1], row[2]),
            )

    def test_update_of_referenced_column_rejected(self, shop_db):
        config = pref_chain_config(4)
        partitioned = partition_database(shop_db, config)
        loader = BulkLoader(partitioned, config)
        # orders.custkey is referenced by customer's PREF predicate.
        with pytest.raises(BulkLoadError):
            loader.update(
                "orders",
                where=lambda row: True,
                assign=lambda row: (row[0], row[1] + 1, row[2]),
            )


class TestCostAccounting:
    def test_simulated_seconds_positive(self, shop_db):
        config = ref_chain_config(4)
        partitioned = partition_database(Database(shop_schema()), config)
        loader = BulkLoader(partitioned, config)
        stats = loader.load(
            {name: list(shop_db.table(name).rows) for name in config.tables}
        )
        assert stats.simulated_seconds() > 0
        assert stats.bytes_written > 0

    def test_merge_accumulates(self):
        from repro.partitioning import BulkLoadStats

        first = BulkLoadStats(rows_in=1, copies_written=2, bytes_written=10)
        second = BulkLoadStats(rows_in=3, copies_written=4, bytes_written=20)
        first.merge(second)
        assert first.rows_in == 4
        assert first.copies_written == 6
        assert first.bytes_written == 30
