"""Tests for unpartitioned tables and databases."""

import pytest

from helpers import shop_database, shop_schema
from repro.errors import RowShapeError, UnknownObjectError
from repro.storage import Database


class TestTable:
    def test_append_and_iterate(self, shop_db):
        table = shop_db.table("customer")
        assert table.row_count == 20
        assert len(list(table)) == 20
        assert table.name == "customer"

    def test_validation_catches_arity(self):
        database = Database(shop_schema())
        with pytest.raises(RowShapeError):
            database.table("nation").append((1,), validate=True)

    def test_validation_catches_types(self):
        database = Database(shop_schema())
        with pytest.raises(RowShapeError):
            database.table("nation").append((1, 42), validate=True)
        database.table("nation").append((1, "ok"), validate=True)

    def test_column_values(self, shop_db):
        keys = shop_db.table("customer").column_values("custkey")
        assert keys == list(range(20))

    def test_key_values_scalar_vs_tuple(self, shop_db):
        lineitem = shop_db.table("lineitem")
        scalars = lineitem.key_values(["orderkey"])
        assert isinstance(scalars[0], int)
        tuples = lineitem.key_values(["orderkey", "itemkey"])
        assert isinstance(tuples[0], tuple) and len(tuples[0]) == 2

    def test_histogram(self, shop_db):
        hist = shop_db.table("lineitem").histogram(["orderkey"])
        assert hist.total_count == shop_db.table("lineitem").row_count

    def test_byte_size(self, shop_db):
        table = shop_db.table("nation")
        assert table.byte_size == table.row_count * table.schema.row_byte_width


class TestDatabase:
    def test_total_rows(self, shop_db):
        expected = sum(t.row_count for t in shop_db.tables.values())
        assert shop_db.total_rows == expected

    def test_table_sizes(self, shop_db):
        sizes = shop_db.table_sizes()
        assert sizes["customer"] == 20
        assert sizes["lineitem"] == 200

    def test_unknown_table(self, shop_db):
        with pytest.raises(UnknownObjectError):
            shop_db.table("nope")

    def test_load(self):
        database = shop_database(seed=1, customers=5, orders=5, lineitems=5)
        before = database.table("item").row_count
        database.load("item", [(999, "new item")])
        assert database.table("item").row_count == before + 1
