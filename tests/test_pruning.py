"""Partition pruning (the paper's future-work extension)."""

import pytest

from helpers import (
    assert_same_rows,
    pref_chain_config,
    ref_chain_config,
    shop_database,
)
from repro.partitioning import partition_database
from repro.query import Executor, LocalExecutor, Query
from repro.query.expressions import and_, col, lit
from repro.query.pruning import derive_prune_info, equality_bindings


class TestEqualityBindings:
    def test_extracts_conjuncts(self):
        condition = and_(
            col("a.x") == lit(5),
            lit("y") == col("a.name"),
            col("a.z") > lit(1),
        )
        assert equality_bindings(condition) == {"a.x": 5, "a.name": "y"}

    def test_or_not_extracted(self):
        from repro.query.expressions import or_

        condition = or_(col("a.x") == lit(5), col("a.x") == lit(6))
        assert equality_bindings(condition) == {}


class TestDerivePruneInfo:
    def make(self, config_builder, orphans=True):
        database = shop_database(seed=5, orphans=orphans)
        partitioned = partition_database(database, config_builder(4))
        return database, partitioned

    def test_hash_scan_pruned_on_key(self):
        _db, partitioned = self.make(ref_chain_config)
        info = derive_prune_info(
            partitioned.table("customer"), "c", col("c.custkey") == lit(3)
        )
        assert info is not None and info.kind == "hash"
        assert info.partitions(partitioned.table("customer")) == frozenset(
            {partitioned.table("customer").scheme.partition_of(3)}
        )

    def test_hash_scan_not_pruned_on_other_column(self):
        _db, partitioned = self.make(ref_chain_config)
        info = derive_prune_info(
            partitioned.table("customer"), "c", col("c.cname") == lit("x")
        )
        assert info is None

    def test_effective_hash_pruning(self):
        _db, partitioned = self.make(ref_chain_config, orphans=False)
        orders = partitioned.table("orders")
        assert orders.effective_hash == ("custkey",)
        info = derive_prune_info(orders, "o", col("o.custkey") == lit(3))
        assert info is not None and info.kind == "effective_hash"
        assert len(info.partitions(orders)) == 1

    def test_partition_index_pruning_for_pref(self):
        _db, partitioned = self.make(pref_chain_config)
        orders = partitioned.table("orders")
        info = derive_prune_info(orders, "o", col("o.orderkey") == lit(7))
        assert info is not None and info.kind == "partition_index"
        allowed = info.partitions(orders)
        # Every copy of orderkey 7 must live in an allowed partition.
        for partition in orders.partitions:
            for row in partition.rows:
                if row[0] == 7:
                    assert partition.partition_id in allowed

    def test_unqualified_column_matches(self):
        _db, partitioned = self.make(ref_chain_config)
        info = derive_prune_info(
            partitioned.table("customer"), "c", col("custkey") == lit(3)
        )
        assert info is not None


class TestPrunedExecution:
    @pytest.mark.parametrize("config_builder", [ref_chain_config, pref_chain_config])
    def test_results_identical_with_pruning(self, config_builder):
        database = shop_database(seed=6)
        partitioned = partition_database(database, config_builder(5))
        local = LocalExecutor(database)
        plans = [
            Query.scan("customer", alias="c")
            .where(col("c.custkey") == lit(4))
            .plan(),
            Query.scan("orders", alias="o")
            .where(and_(col("o.custkey") == lit(4), col("o.total") > lit(10.0)))
            .aggregate(aggregates=[("count", None, "n")])
            .plan(),
            Query.scan("lineitem", alias="l")
            .where(col("l.orderkey") == lit(9))
            .join(
                Query.scan("orders", alias="o"),
                on=[("l.orderkey", "o.orderkey")],
            )
            .aggregate(aggregates=[("count", None, "n")])
            .plan(),
        ]
        executor = Executor(partitioned)
        for plan in plans:
            assert_same_rows(
                executor.execute(plan).rows, local.execute(plan).rows
            )

    def test_partitions_scanned_reduced(self):
        database = shop_database(seed=6, orphans=False)
        partitioned = partition_database(database, ref_chain_config(5))
        plan = (
            Query.scan("customer", alias="c")
            .where(col("c.custkey") == lit(4))
            .aggregate(aggregates=[("count", None, "n")])
            .plan()
        )
        pruned = Executor(partitioned, optimizations=True).execute(plan)
        full = Executor(partitioned, optimizations=False).execute(plan)
        assert pruned.rows == full.rows
        assert pruned.stats.partitions_scanned == 1
        assert full.stats.partitions_scanned == 5

    def test_pruning_disabled_without_optimizations(self):
        database = shop_database(seed=6)
        partitioned = partition_database(database, ref_chain_config(5))
        plan = (
            Query.scan("customer", alias="c")
            .where(col("c.custkey") == lit(4))
            .plan()
        )
        executor = Executor(partitioned, optimizations=False)
        assert executor.execute(plan).stats.partitions_scanned == 5

    def test_sql_filters_prune_via_pushdown(self):
        database = shop_database(seed=6, orphans=False)
        partitioned = partition_database(database, ref_chain_config(5))
        from repro.sql import sql_to_plan

        plan = sql_to_plan(
            "SELECT COUNT(*) AS n FROM customer c WHERE c.custkey = 4",
            database.schema,
        )
        result = Executor(partitioned).execute(plan)
        assert result.stats.partitions_scanned == 1
        assert result.rows == [(1,)]
