"""Backend fault paths: failures propagate, pools survive, traces hold.

Every scheduling backend must behave identically at the edges, not just
on the happy path: an operator raising in any task phase (prepare,
exchange, run_partition) propagates the same exception type to the
caller; a failed query leaves no straggler tasks running and the same
backend instance serves the next query; an empty task graph returns
instead of deadlocking (a regression in the thread pool's completion
counting); and trace events stay well-formed under concurrency.
"""

import threading
import time

import pytest

from helpers import assert_same_rows
from repro.engine import (
    ExecutionContext,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
)
from repro.engine.operators import PhysicalAggregate, PhysicalScan
from repro.query import Executor
from repro.sql import sql_to_plan


class BoomError(RuntimeError):
    """Injected operator failure (picklable by reference, so worker
    processes can ship it back to the coordinator)."""


def _boom(self, *args, **kwargs):
    raise BoomError("injected failure")


BACKENDS = {
    "serial": lambda: SerialBackend(),
    "thread": lambda: ThreadPoolBackend(max_workers=4),
    "process": lambda: ProcessPoolBackend(max_workers=2),
}

#: Exercises every task phase: scans (partition), a two-phase aggregate
#: (prepare + exchange), a co-partitioned join, and a gathering order-by.
SQL = (
    "SELECT c.nationkey AS nk, COUNT(*) AS n FROM customer c, orders o "
    "WHERE c.custkey = o.custkey GROUP BY c.nationkey ORDER BY nk"
)

#: Fault site per task phase.
FAULTS = {
    "partition": (PhysicalScan, "run_partition"),
    "prepare": (PhysicalAggregate, "prepare_partition"),
    "exchange": (PhysicalAggregate, "exchange"),
}


class _EmptyRoot:
    """A degenerate plan with no operators (hence no tasks)."""

    op_id = 0

    def walk(self):
        return iter(())


@pytest.mark.parametrize("backend_name", list(BACKENDS))
def test_empty_task_graph_returns(backend_name):
    # Regression: the thread pool's completion event was only set by a
    # finishing task, so zero tasks meant waiting forever.
    backend = BACKENDS[backend_name]()
    finished = threading.Event()

    def run():
        backend.run(_EmptyRoot(), ExecutionContext(4))
        finished.set()

    worker = threading.Thread(target=run, daemon=True)
    worker.start()
    worker.join(timeout=10)
    try:
        assert finished.is_set(), (
            f"{backend_name} backend hangs on an empty task graph"
        )
    finally:
        backend.close()


@pytest.mark.parametrize("phase", list(FAULTS))
@pytest.mark.parametrize("backend_name", list(BACKENDS))
def test_operator_failure_propagates_and_pool_survives(
    shop_db, shop_pref, backend_name, phase, monkeypatch
):
    partitioned, _config = shop_pref
    backend = BACKENDS[backend_name]()
    try:
        executor = Executor(partitioned, backend=backend)
        plan = sql_to_plan(SQL, shop_db.schema)
        reference = executor.execute(plan).rows
        cls, method = FAULTS[phase]
        with monkeypatch.context() as patch:
            patch.setattr(cls, method, _boom)
            with pytest.raises(BoomError):
                executor.execute(plan)
        # The same backend instance must serve the next query cleanly.
        result = executor.execute(plan)
        assert result.rows == reference
    finally:
        backend.close()


def test_thread_pool_drains_inflight_before_raising(
    shop_db, shop_pref, monkeypatch
):
    # The old scheduler re-raised while sibling tasks were still running
    # on the shared pool; now run() must not return before they drain.
    partitioned, _config = shop_pref
    backend = ThreadPoolBackend(max_workers=4)
    completions = []
    original = PhysicalScan.run_partition

    def flaky(self, ctx, p):
        if p == 0:
            raise BoomError("partition 0 down")
        time.sleep(0.05)
        original(self, ctx, p)
        completions.append(p)

    monkeypatch.setattr(PhysicalScan, "run_partition", flaky)
    plan = sql_to_plan(SQL, shop_db.schema)
    try:
        with pytest.raises(BoomError):
            Executor(partitioned, backend=backend).execute(plan)
        settled = len(completions)
        time.sleep(0.25)
        assert len(completions) == settled, (
            "sibling tasks were still executing after run() raised"
        )
    finally:
        backend.close()


@pytest.mark.parametrize("backend_name", ["thread", "process"])
def test_trace_events_well_formed_under_concurrency(
    shop_db, shop_pref, backend_name
):
    partitioned, _config = shop_pref
    plan = sql_to_plan(SQL, shop_db.schema)
    serial_events = []
    serial_result = Executor(
        partitioned, backend=SerialBackend(), trace=serial_events.append
    ).execute(plan)
    backend = BACKENDS[backend_name]()
    events = []
    try:
        result = Executor(
            partitioned, backend=backend, trace=events.append
        ).execute(plan)
    finally:
        backend.close()
    assert_same_rows(result.rows, serial_result.rows)
    # Same multiset of tasks, regardless of scheduling: every task runs
    # exactly once and reports exactly one event.
    assert sorted((e.op_id, e.phase, e.node_id) for e in events) == sorted(
        (e.op_id, e.phase, e.node_id) for e in serial_events
    )
    assert all(e.seconds >= 0.0 for e in events)
    assert all(
        e.phase in {"prepare", "exchange", "partition"} for e in events
    )
    assert all(isinstance(e.label, str) and e.label for e in events)
