"""Tests for the expression language."""

import pytest

from repro.errors import PlanningError
from repro.query.expressions import (
    InList,
    IsNull,
    and_,
    col,
    lit,
    not_,
    or_,
    resolve_column,
)

COLUMNS = ("t.a", "t.b", "u.a", "u.c")


class TestColumnResolution:
    def test_exact_match(self):
        assert resolve_column("t.a", COLUMNS) == 0
        assert resolve_column("u.c", COLUMNS) == 3

    def test_suffix_match(self):
        assert resolve_column("b", COLUMNS) == 1
        assert resolve_column("c", COLUMNS) == 3

    def test_ambiguous_suffix_rejected(self):
        with pytest.raises(PlanningError):
            resolve_column("a", COLUMNS)

    def test_unknown_rejected(self):
        with pytest.raises(PlanningError):
            resolve_column("zzz", COLUMNS)


class TestEvaluation:
    def row(self):
        return (1, 2, 3, "x")

    def test_column_ref(self):
        assert col("t.b").bind(COLUMNS)(self.row()) == 2

    def test_literal(self):
        assert lit(42).bind(COLUMNS)(self.row()) == 42

    def test_comparisons(self):
        row = self.row()
        assert (col("t.a") < col("t.b")).bind(COLUMNS)(row)
        assert (col("t.a") <= lit(1)).bind(COLUMNS)(row)
        assert (col("t.b") == lit(2)).bind(COLUMNS)(row)
        assert (col("t.b") != lit(3)).bind(COLUMNS)(row)
        assert (col("u.a") > lit(2)).bind(COLUMNS)(row)
        assert (col("u.a") >= lit(3)).bind(COLUMNS)(row)

    def test_arithmetic(self):
        row = self.row()
        assert (col("t.a") + col("t.b")).bind(COLUMNS)(row) == 3
        assert (col("t.b") - lit(1)).bind(COLUMNS)(row) == 1
        assert (col("t.b") * lit(4)).bind(COLUMNS)(row) == 8
        assert (col("u.a") / lit(2)).bind(COLUMNS)(row) == 1.5
        assert (lit(10) - col("t.a")).bind(COLUMNS)(row) == 9
        assert (lit(1.0) - col("t.a") * lit(0.5)).bind(COLUMNS)(row) == 0.5

    def test_boolean_combinators(self):
        row = self.row()
        expr = and_(col("t.a") == lit(1), col("t.b") == lit(2))
        assert expr.bind(COLUMNS)(row)
        expr = or_(col("t.a") == lit(99), col("t.b") == lit(2))
        assert expr.bind(COLUMNS)(row)
        assert not not_(col("t.a") == lit(1)).bind(COLUMNS)(row)

    def test_single_operand_combinators(self):
        expr = and_(col("t.a") == lit(1))
        assert expr.bind(COLUMNS)(self.row())

    def test_in_list(self):
        row = self.row()
        assert InList(col("t.b"), (1, 2, 3)).bind(COLUMNS)(row)
        assert not InList(col("t.b"), (5,)).bind(COLUMNS)(row)
        assert InList(col("t.b"), (5,), negated=True).bind(COLUMNS)(row)

    def test_is_null(self):
        columns = ("x",)
        assert IsNull(col("x")).bind(columns)((None,))
        assert not IsNull(col("x")).bind(columns)((1,))
        assert IsNull(col("x"), negated=True).bind(columns)((1,))

    def test_referenced_columns(self):
        expr = and_(col("t.a") == lit(1), col("t.b") + col("u.c") > lit(0))
        assert set(expr.referenced_columns()) == {"t.a", "t.b", "u.c"}

    def test_unknown_operator_rejected(self):
        from repro.query.expressions import Arithmetic, Comparison

        with pytest.raises(PlanningError):
            Comparison("~", col("t.a"), lit(1))
        with pytest.raises(PlanningError):
            Arithmetic("%", col("t.a"), lit(1))
