"""Tests for the Appendix A redundancy estimator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import pref_chain_config, ref_chain_config, shop_database
from repro.design import (
    RedundancyEstimator,
    expected_copies,
    expected_copies_closed_form,
    stirling2,
)
from repro.partitioning import partition_database


class TestStirling:
    def test_known_values(self):
        # S(4, 2) = 7, S(5, 3) = 25, S(n, 1) = 1, S(n, n) = 1.
        assert stirling2(4, 2) == 7
        assert stirling2(5, 3) == 25
        assert stirling2(6, 1) == 1
        assert stirling2(6, 6) == 1
        assert stirling2(3, 5) == 0
        assert stirling2(3, 0) == 0

    def test_recurrence(self):
        for f in range(2, 12):
            for x in range(1, f + 1):
                assert stirling2(f, x) == x * stirling2(f - 1, x) + stirling2(
                    f - 1, x - 1
                )


class TestExpectedCopies:
    def test_boundaries(self):
        assert expected_copies(0, 10) == 1.0  # orphan: stored once
        assert expected_copies(1, 10) == 1.0
        assert expected_copies(5, 1) == 1.0

    def test_monotone_in_frequency(self):
        values = [expected_copies(f, 10) for f in range(1, 40)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_bounded_by_min_n_f(self):
        for f in range(1, 30):
            for n in (2, 5, 10):
                assert 1.0 <= expected_copies(f, n) <= min(n, f) + 1e-9

    def test_stirling_formulation_equals_closed_form(self):
        # The Stirling sum is the expected number of occupied boxes; the
        # closed form n(1-(1-1/n)^f) is the same quantity.
        for f in range(1, 30):
            for n in (2, 3, 7, 10):
                assert expected_copies(f, n) == pytest.approx(
                    expected_copies_closed_form(f, n), rel=1e-9
                )

    def test_large_frequency_saturates(self):
        assert expected_copies(10_000, 10) == pytest.approx(10.0, rel=1e-6)

    @given(
        f=st.integers(min_value=1, max_value=200),
        n=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_always_in_range(self, f, n):
        value = expected_copies(f, n)
        assert 1.0 <= value <= min(n, f) + 1e-9


class TestRedundancyEstimator:
    def test_edge_factor_one_for_pk_reference(self, shop_db):
        estimator = RedundancyEstimator(shop_db, 4)
        config = ref_chain_config(4)
        # orders references customer's primary key: frequency 1 per value.
        size = estimator.estimate_table_size("orders", config)
        assert size == pytest.approx(shop_db.table("orders").row_count, rel=0.01)

    def test_estimates_close_to_actual(self, shop_db):
        estimator = RedundancyEstimator(shop_db, 4)
        config = pref_chain_config(4)
        partitioned = partition_database(shop_db, config)
        for table in ("orders", "item"):
            estimate = estimator.estimate_table_size(table, config)
            actual = partitioned.table(table).total_rows
            assert estimate == pytest.approx(actual, rel=0.45)

    def test_replicated_table_size(self, shop_db):
        estimator = RedundancyEstimator(shop_db, 4)
        config = pref_chain_config(4)
        size = estimator.estimate_table_size("nation", config)
        assert size == shop_db.table("nation").row_count * 4

    def test_database_size_and_redundancy(self, shop_db):
        estimator = RedundancyEstimator(shop_db, 4)
        config = pref_chain_config(4)
        total = estimator.estimate_database_size(config)
        assert total > shop_db.total_rows  # redundancy exists
        assert estimator.estimate_redundancy(config) > 0

    def test_sampling_changes_little_on_uniform_data(self):
        database = shop_database(seed=11, orders=200, lineitems=800)
        full = RedundancyEstimator(database, 8, sampling_rate=1.0)
        sampled = RedundancyEstimator(database, 8, sampling_rate=0.3, seed=2)
        config = pref_chain_config(8)
        exact = full.estimate_database_size(config)
        approx = sampled.estimate_database_size(config)
        assert approx == pytest.approx(exact, rel=0.35)

    def test_factor_cached(self, shop_db):
        estimator = RedundancyEstimator(shop_db, 4)
        config = pref_chain_config(4)
        first = estimator.estimate_table_size("orders", config)
        second = estimator.estimate_table_size("orders", config)
        assert first == second
        assert estimator._edge_cache  # populated

    def test_invalid_partition_count(self, shop_db):
        from repro.errors import DesignError

        with pytest.raises(DesignError):
            RedundancyEstimator(shop_db, 0)
