"""Tests for the Section 2.2 rewrite process: locality cases, Part/Dup."""

from helpers import pref_chain_config, ref_chain_config, shop_database
from repro.partitioning import partition_database
from repro.query import Query, Rewriter
from repro.query.expressions import col, lit
from repro.query.plan import DedupFilter, PartnerFilter, Repartition
from repro.query.relation import Method


def rewriter_for(database, config):
    return Rewriter(partition_database(database, config))


def count_nodes(annotated, node_type):
    total = 1 if isinstance(annotated.node, node_type) else 0
    return total + sum(count_nodes(child, node_type) for child in annotated.inputs)


class TestScanAnnotations:
    def test_hash_scan(self, shop_db):
        rewriter = rewriter_for(shop_db, pref_chain_config(4))
        annotated = rewriter.rewrite(Query.scan("lineitem", alias="l").plan())
        assert annotated.props.part.method is Method.SEED
        assert annotated.props.part.hash_columns == ("l.linekey",)
        assert not annotated.props.dup

    def test_pref_scan_has_hidden_columns_and_dup(self, shop_db):
        rewriter = rewriter_for(shop_db, pref_chain_config(4))
        annotated = rewriter.rewrite(Query.scan("orders", alias="o").plan())
        assert annotated.props.part.method is Method.PREF
        assert "__dup@o" in annotated.props.columns
        assert "__has@o" in annotated.props.columns
        assert annotated.props.dup  # orders has materialised duplicates
        assert annotated.props.part.seed_table == "lineitem"

    def test_pref_scan_without_duplicates_is_dup_free(self, shop_db):
        rewriter = rewriter_for(shop_db, ref_chain_config(4))
        annotated = rewriter.rewrite(Query.scan("orders", alias="o").plan())
        assert annotated.props.part.method is Method.PREF
        assert not annotated.props.dup

    def test_replicated_scan(self, shop_db):
        rewriter = rewriter_for(shop_db, pref_chain_config(4))
        annotated = rewriter.rewrite(Query.scan("nation", alias="n").plan())
        assert annotated.props.part.method is Method.REPLICATED

    def test_visible_columns_hide_bitmaps(self, shop_db):
        rewriter = rewriter_for(shop_db, pref_chain_config(4))
        annotated = rewriter.rewrite(Query.scan("orders", alias="o").plan())
        assert all(
            not column.startswith("__")
            for column in annotated.props.visible_columns
        )


class TestJoinLocality:
    def test_case2_seed_join_pref(self, shop_db):
        """lineitem (seed) JOIN orders (PREF by lineitem) -> no shuffle."""
        rewriter = rewriter_for(shop_db, pref_chain_config(4))
        plan = (
            Query.scan("lineitem", alias="l")
            .join(Query.scan("orders", alias="o"), on=[("l.orderkey", "o.orderkey")])
            .plan()
        )
        annotated = rewriter.rewrite(plan)
        assert annotated.extra["case"] == "case2"
        assert count_nodes(annotated, Repartition) == 0
        assert not annotated.props.dup  # case 2 results are duplicate-free

    def test_case3_pref_join_pref(self, shop_db):
        """orders JOIN customer (PREF by orders) -> local, dup inherited."""
        rewriter = rewriter_for(shop_db, pref_chain_config(4))
        plan = (
            Query.scan("orders", alias="o")
            .join(Query.scan("customer", alias="c"), on=[("o.custkey", "c.custkey")])
            .plan()
        )
        annotated = rewriter.rewrite(plan)
        assert annotated.extra["case"] == "case3"
        assert count_nodes(annotated, Repartition) == 0
        assert annotated.props.dup  # inherits the referenced side's dups

    def test_case1_both_hashed_on_key(self, shop_db):
        from helpers import all_hashed_config
        from repro.partitioning import HashScheme, PartitioningConfig

        config = PartitioningConfig(4)
        config.add("orders", HashScheme(("orderkey",), 4))
        config.add("lineitem", HashScheme(("orderkey",), 4))
        rewriter = rewriter_for(shop_db, config)
        plan = (
            Query.scan("lineitem", alias="l")
            .join(Query.scan("orders", alias="o"), on=[("l.orderkey", "o.orderkey")])
            .plan()
        )
        annotated = rewriter.rewrite(plan)
        assert annotated.extra["case"] == "case1"
        assert count_nodes(annotated, Repartition) == 0

    def test_remote_join_requires_shuffles(self, shop_db):
        from helpers import all_hashed_config

        rewriter = rewriter_for(shop_db, all_hashed_config(4))
        plan = (
            Query.scan("lineitem", alias="l")
            .join(Query.scan("orders", alias="o"), on=[("l.orderkey", "o.orderkey")])
            .plan()
        )
        annotated = rewriter.rewrite(plan)
        # lineitem hashed by linekey: only orders is already aligned.
        assert count_nodes(annotated, Repartition) == 1

    def test_replicated_side_joins_locally(self, shop_db):
        rewriter = rewriter_for(shop_db, pref_chain_config(4))
        plan = (
            Query.scan("customer", alias="c")
            .join(Query.scan("nation", alias="n"), on=[("c.nationkey", "n.nationkey")])
            .plan()
        )
        annotated = rewriter.rewrite(plan)
        assert annotated.extra["case"] == "replicated_right"
        assert count_nodes(annotated, Repartition) == 0

    def test_effective_hash_enables_case1_across_chain(self):
        database = shop_database(seed=2, orphans=False)
        rewriter = rewriter_for(database, ref_chain_config(4))
        # orders is PREF by customer but effectively hashed on custkey, so
        # a join with customer on custkey is case 1... and also case 2;
        # either way it must be local.
        plan = (
            Query.scan("customer", alias="c")
            .join(Query.scan("orders", alias="o"), on=[("c.custkey", "o.custkey")])
            .plan()
        )
        annotated = rewriter.rewrite(plan)
        assert count_nodes(annotated, Repartition) == 0

    def test_chain_join_on_seed_placement(self, shop_db):
        """customer JOIN orders JOIN lineitem stays fully local (chain)."""
        rewriter = rewriter_for(shop_db, ref_chain_config(4))
        plan = (
            Query.scan("customer", alias="c")
            .join(Query.scan("orders", alias="o"), on=[("c.custkey", "o.custkey")])
            .join(Query.scan("lineitem", alias="l"), on=[("o.orderkey", "l.orderkey")])
            .plan()
        )
        annotated = rewriter.rewrite(plan)
        assert count_nodes(annotated, Repartition) == 0


class TestProjectionAndAggregation:
    def test_projection_over_dup_inserts_dedup(self, shop_db):
        rewriter = rewriter_for(shop_db, pref_chain_config(4))
        plan = Query.scan("orders", alias="o").select(["o.orderkey"]).plan()
        annotated = rewriter.rewrite(plan)
        assert count_nodes(annotated, DedupFilter) == 1

    def test_projection_over_clean_input_has_no_dedup(self, shop_db):
        rewriter = rewriter_for(shop_db, pref_chain_config(4))
        plan = Query.scan("lineitem", alias="l").select(["l.linekey"]).plan()
        annotated = rewriter.rewrite(plan)
        assert count_nodes(annotated, DedupFilter) == 0

    def test_group_by_partition_key_is_local(self, shop_db):
        rewriter = rewriter_for(shop_db, pref_chain_config(4))
        plan = (
            Query.scan("lineitem", alias="l")
            .aggregate(group_by=["l.linekey"], aggregates=[("sum", col("l.qty"), "q")])
            .plan()
        )
        annotated = rewriter.rewrite(plan)
        assert annotated.extra["strategy"] == "local"

    def test_group_by_other_column_is_two_phase(self, shop_db):
        rewriter = rewriter_for(shop_db, pref_chain_config(4))
        plan = (
            Query.scan("lineitem", alias="l")
            .aggregate(group_by=["l.itemkey"], aggregates=[("sum", col("l.qty"), "q")])
            .plan()
        )
        annotated = rewriter.rewrite(plan)
        assert annotated.extra["strategy"] == "two_phase"

    def test_aggregate_over_replicated_is_single_node(self, shop_db):
        rewriter = rewriter_for(shop_db, pref_chain_config(4))
        plan = (
            Query.scan("nation", alias="n")
            .aggregate(aggregates=[("count", None, "cnt")])
            .plan()
        )
        annotated = rewriter.rewrite(plan)
        assert annotated.extra["strategy"] == "single"
        assert annotated.props.part.method is Method.GATHERED


class TestSemiAntiRewrites:
    def test_anti_join_becomes_partner_filter(self, shop_db):
        rewriter = rewriter_for(shop_db, pref_chain_config(4))
        plan = (
            Query.scan("customer", alias="c")
            .anti_join(Query.scan("orders", alias="o"), on=[("c.custkey", "o.custkey")])
            .plan()
        )
        annotated = rewriter.rewrite(plan)
        assert isinstance(annotated.node, PartnerFilter)
        assert annotated.node.expect is False

    def test_semi_join_becomes_partner_filter(self, shop_db):
        rewriter = rewriter_for(shop_db, pref_chain_config(4))
        plan = (
            Query.scan("customer", alias="c")
            .semi_join(Query.scan("orders", alias="o"), on=[("c.custkey", "o.custkey")])
            .plan()
        )
        annotated = rewriter.rewrite(plan)
        assert isinstance(annotated.node, PartnerFilter)
        assert annotated.node.expect is True

    def test_filtered_right_prevents_partner_filter(self, shop_db):
        rewriter = rewriter_for(shop_db, pref_chain_config(4))
        plan = (
            Query.scan("customer", alias="c")
            .semi_join(
                Query.scan("orders", alias="o").where(col("o.total") > lit(50.0)),
                on=[("c.custkey", "o.custkey")],
            )
            .plan()
        )
        annotated = rewriter.rewrite(plan)
        assert not isinstance(annotated.node, PartnerFilter)

    def test_optimizations_flag_disables_partner_filter(self, shop_db):
        partitioned = partition_database(shop_db, pref_chain_config(4))
        rewriter = Rewriter(partitioned, optimizations=False)
        plan = (
            Query.scan("customer", alias="c")
            .anti_join(Query.scan("orders", alias="o"), on=[("c.custkey", "o.custkey")])
            .plan()
        )
        annotated = rewriter.rewrite(plan)
        assert count_nodes(annotated, PartnerFilter) == 0
