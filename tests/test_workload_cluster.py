"""Tests for the WorkloadCluster facade and the OLTP design mode."""

import pytest

from helpers import assert_same_rows, shop_database
from repro.cluster import WorkloadCluster
from repro.design import QuerySpec, SchemaDrivenDesigner
from repro.partitioning import JoinPredicate, partition_database
from repro.query import LocalExecutor


def make_workload():
    return [
        QuerySpec.make(
            "q_lo",
            [JoinPredicate.equi("lineitem", "orderkey", "orders", "orderkey")],
        ),
        QuerySpec.make(
            "q_li",
            [JoinPredicate.equi("lineitem", "itemkey", "item", "itemkey")],
        ),
        QuerySpec.make(
            "q_oc",
            [JoinPredicate.equi("orders", "custkey", "customer", "custkey")],
        ),
    ]


@pytest.fixture(scope="module")
def cluster():
    database = shop_database(seed=9)
    return database, WorkloadCluster.design(
        database, make_workload(), 4, replicate=["nation"]
    )


class TestWorkloadCluster:
    def test_fragments_materialised(self, cluster):
        _db, wc = cluster
        assert len(wc.clusters) == len(wc.design.fragments)
        assert all(c.node_count == 4 for c in wc.clusters)

    def test_sql_routes_and_matches_reference(self, cluster):
        database, wc = cluster
        queries = [
            "SELECT COUNT(*) AS n FROM lineitem l JOIN orders o "
            "ON l.orderkey = o.orderkey",
            "SELECT i.iname, COUNT(*) AS n FROM lineitem l JOIN item i "
            "ON l.itemkey = i.itemkey GROUP BY i.iname ORDER BY i.iname",
            "SELECT COUNT(*) AS n FROM orders o JOIN customer c "
            "ON o.custkey = c.custkey",
        ]
        local = LocalExecutor(database)
        from repro.sql import sql_to_plan

        for query in queries:
            plan = sql_to_plan(query, database.schema)
            assert_same_rows(wc.sql(query).rows, local.execute(plan).rows)

    def test_routing_prefers_low_redundancy_fragment(self, cluster):
        _db, wc = cluster
        # Routing by tables must return a valid fragment index.
        index = wc.route_tables({"lineitem", "orders"})
        assert 0 <= index < len(wc.clusters)

    def test_route_unknown_tables_raises(self, cluster):
        _db, wc = cluster
        with pytest.raises(Exception):
            wc.route_tables({"not_a_table"})

    def test_storage_accounting(self, cluster):
        _db, wc = cluster
        assert wc.total_stored_rows() > 0
        assert wc.data_redundancy() >= 0

    def test_explain_names_fragment(self, cluster):
        _db, wc = cluster
        text = wc.explain(
            "SELECT COUNT(*) AS n FROM lineitem l JOIN orders o "
            "ON l.orderkey = o.orderkey"
        )
        assert text.startswith("-- routed to fragment")


class TestOltpDesign:
    def test_no_duplicates_anywhere(self):
        database = shop_database(seed=9)
        result = SchemaDrivenDesigner(database, 4).design_for_oltp(
            replicate=["nation"]
        )
        partitioned = partition_database(database, result.config)
        for table in result.config.tables:
            if table == "nation":
                continue
            assert partitioned.table(table).duplicate_count == 0, table

    def test_locality_still_positive(self):
        database = shop_database(seed=9)
        result = SchemaDrivenDesigner(database, 4).design_for_oltp(
            replicate=["nation"]
        )
        assert result.data_locality > 0.5
