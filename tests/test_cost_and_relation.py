"""Tests for the cost model and the runtime relation properties."""

import pytest

from repro.query.cost import CostParameters, ExecutionStats
from repro.query.relation import (
    Method,
    PartInfo,
    RelProps,
    dup_column,
    has_column,
    is_hidden,
)


class TestExecutionStats:
    def test_work_and_straggler(self):
        stats = ExecutionStats(4)
        stats.add_work(0, 100)
        stats.add_work(2, 300)
        assert stats.max_node_work == 300
        assert stats.rows_processed == 400

    def test_simulated_seconds_components(self):
        params = CostParameters(
            cpu_tuple_seconds=1e-6,
            network_bandwidth_bytes=1e6,
            shuffle_latency_seconds=0.5,
            coordinator_overhead_seconds=0.25,
            row_scale=1.0,
        )
        stats = ExecutionStats(2)
        stats.add_work(0, 1_000_000)
        stats.add_network(2_000_000, 10)
        stats.add_shuffle()
        seconds = stats.simulated_seconds(params)
        # cpu 1s + network 2e6/(1e6*2 nodes)=1s + latency .5 + overhead .25
        assert seconds == pytest.approx(1.0 + 1.0 + 0.5 + 0.25)

    def test_row_scale_extrapolates(self):
        stats = ExecutionStats(2)
        stats.add_work(0, 1000)
        small = stats.simulated_seconds(CostParameters(row_scale=1))
        big = stats.simulated_seconds(CostParameters(row_scale=100))
        assert big > small

    def test_spill_penalty(self):
        params = CostParameters(
            cpu_tuple_seconds=1e-6,
            memory_rows_per_node=1000,
            spill_pass_factor=1.0,
            row_scale=1.0,
            coordinator_overhead_seconds=0.0,
            shuffle_latency_seconds=0.0,
        )
        stats = ExecutionStats(2)
        stats.add_work(0, 0)
        stats.add_join_event(0, build_rows=3500, probe_rows=500)
        # 3 extra passes over (build + probe) = 12000 rows.
        assert stats.simulated_seconds(params) == pytest.approx(12_000e-6)

    def test_merge(self):
        first, second = ExecutionStats(2), ExecutionStats(2)
        first.add_work(0, 10)
        second.add_work(1, 20)
        second.add_network(100, 1)
        second.add_shuffle()
        second.add_join_event(0, 5, 5)
        first.merge(second)
        assert first.node_work == [10, 20]
        assert first.network_bytes == 100
        assert first.shuffle_count == 1
        assert len(first.join_events) == 1


class TestRelProps:
    def make_props(self):
        return RelProps(
            columns=("o.orderkey", "o.custkey", dup_column("o"), has_column("o")),
            origins=(("orders", "orderkey"), ("orders", "custkey"), None, None),
            widths=(4, 4, 1, 1),
            part=PartInfo(Method.PREF, 4, hash_columns=("o.custkey",)),
            governing=(dup_column("o"),),
            equivalences=(frozenset({"o.custkey", "c.custkey"}),),
        )

    def test_hidden_columns(self):
        props = self.make_props()
        assert props.visible_columns == ("o.orderkey", "o.custkey")
        assert is_hidden(dup_column("o"))
        assert is_hidden(has_column("o"))
        assert not is_hidden("o.orderkey")

    def test_dup_flag_follows_governing(self):
        props = self.make_props()
        assert props.dup
        from dataclasses import replace

        assert not replace(props, governing=()).dup

    def test_position_resolution(self):
        props = self.make_props()
        assert props.position("o.orderkey") == 0
        assert props.position("orderkey") == 0
        assert props.origin_of("custkey") == ("orders", "custkey")

    def test_same_value_via_equivalences(self):
        props = self.make_props()
        assert props.same_value("o.custkey", "o.custkey")
        # c.custkey is not a column of this relation, so resolution fails.
        from repro.errors import PlanningError

        with pytest.raises(PlanningError):
            props.same_value("o.custkey", "c.custkey")

    def test_row_bytes(self):
        assert self.make_props().row_bytes() == 10


class TestPartInfo:
    def test_rename_hash_columns(self):
        part = PartInfo(Method.HASHED, 4, hash_columns=("a", "b"))
        renamed = part.rename_hash_columns({"a": "x", "b": "y"})
        assert renamed.hash_columns == ("x", "y")

    def test_rename_dropping_column_degrades(self):
        part = PartInfo(Method.HASHED, 4, hash_columns=("a", "b"))
        degraded = part.rename_hash_columns({"a": "x"})
        assert degraded.method is Method.NONE
        assert degraded.hash_columns == ()

    def test_seed_keeps_anchors_on_drop(self):
        part = PartInfo(
            Method.SEED, 4, hash_columns=("a",), anchors=frozenset({"t"})
        )
        degraded = part.rename_hash_columns({})
        assert degraded.method is Method.SEED
        assert degraded.anchors == frozenset({"t"})
        assert degraded.hash_columns == ()

    def test_without_anchors(self):
        part = PartInfo(Method.SEED, 4, anchors=frozenset({"t"}))
        assert part.without_anchors().anchors == frozenset()
