"""Concurrency stress for the serving layer.

Correctness bar: anything the server returns under concurrency must be
byte-identical (float-tolerant for reordered sums) to the same query run
alone on the same data.  Reads race reads, reads race writes; the
writer-priority RW lock plus epoch invalidation must keep every answer
a consistent snapshot.
"""

from __future__ import annotations

import threading
import time

from helpers import assert_same_rows, normalise_rows, shop_database
from repro.cluster import SimulatedCluster
from repro.partitioning import (
    HashScheme,
    JoinPredicate,
    PartitioningConfig,
    PatchedPrefScheme,
    PrefScheme,
    ReplicatedScheme,
    check_pref_invariants,
)

QUERIES = [
    "SELECT COUNT(*) AS n FROM orders o",
    "SELECT SUM(o.total) AS t FROM orders o",
    (
        "SELECT c.cname, SUM(o.total) AS spent FROM customer c "
        "JOIN orders o ON c.custkey = o.custkey GROUP BY c.cname"
    ),
    (
        "SELECT c.custkey, c.cname FROM customer c WHERE EXISTS "
        "(SELECT * FROM orders o WHERE o.custkey = c.custkey)"
    ),
    "SELECT o.orderkey, o.total FROM orders o WHERE o.total > 50.0",
    (
        "SELECT n.nname, COUNT(*) AS c FROM customer cu "
        "JOIN nation n ON cu.nationkey = n.nationkey GROUP BY n.nname"
    ),
]


def _config(n: int = 4) -> PartitioningConfig:
    config = PartitioningConfig(n)
    config.add("orders", HashScheme(("orderkey",), n))
    config.add(
        "customer",
        PrefScheme(
            "orders",
            JoinPredicate.equi("customer", "custkey", "orders", "custkey"),
        ),
    )
    config.add(
        "lineitem",
        PrefScheme(
            "orders",
            JoinPredicate.equi("lineitem", "orderkey", "orders", "orderkey"),
        ),
    )
    config.add("item", HashScheme(("itemkey",), n))
    config.add("nation", ReplicatedScheme(n))
    return config


def _patched_config(n: int = 4) -> PartitioningConfig:
    """Migration target: customer switches to capped PREF duplication."""
    config = PartitioningConfig(n)
    config.add("orders", HashScheme(("orderkey",), n))
    config.add(
        "customer",
        PatchedPrefScheme(
            "orders",
            JoinPredicate.equi("customer", "custkey", "orders", "custkey"),
            max_copies=1,
        ),
    )
    config.add(
        "lineitem",
        PrefScheme(
            "orders",
            JoinPredicate.equi("lineitem", "orderkey", "orders", "orderkey"),
        ),
    )
    config.add("item", HashScheme(("itemkey",), n))
    config.add("nation", ReplicatedScheme(n))
    return config


def _run_threads(workers):
    threads = [threading.Thread(target=worker) for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestConcurrentReads:
    def test_n_threads_m_queries_backend_identical(self):
        """8 threads x 12 queries each: every concurrent answer equals
        the single-query answer computed serially beforehand."""
        cluster = SimulatedCluster.partition(shop_database(seed=11), _config())
        reference = {sql: cluster.sql(sql).rows for sql in QUERIES}
        server = cluster.serve(max_inflight=4, queue_depth=256)
        failures: list[str] = []
        threads_n, per_thread = 8, 12

        def reader(index: int):
            session = server.session(f"reader-{index}")
            for step in range(per_thread):
                sql = QUERIES[(index + step) % len(QUERIES)]
                try:
                    rows = session.execute(sql, timeout=60).rows
                except Exception as error:  # noqa: BLE001 - collected
                    failures.append(f"{sql!r}: {error!r}")
                    continue
                if normalise_rows(rows) != normalise_rows(reference[sql]):
                    failures.append(f"{sql!r}: diverged under concurrency")

        try:
            _run_threads(
                [lambda i=i: reader(i) for i in range(threads_n)]
            )
        finally:
            server.close()
            cluster.close()
        assert not failures, failures[:5]
        summary = server.metrics_summary()
        assert summary["completed"] == threads_n * per_thread
        assert summary["errors"] == 0
        # The workload repeats 6 queries 96 times: the result cache must
        # have absorbed most of it (first touches and concurrent first
        # touches miss; everything else hits).
        assert summary["result_cache"]["hits"] >= summary["completed"] // 2

    def test_concurrent_sessions_share_plan_cache(self):
        cluster = SimulatedCluster.partition(shop_database(seed=11), _config())
        server = cluster.serve(max_inflight=4, result_cache_size=0)
        sql = QUERIES[2]

        def reader():
            for _ in range(5):
                server.execute(sql, timeout=60)

        try:
            _run_threads([reader for _ in range(4)])
            stats = server.plan_cache.stats
            # One thread plans it (a race may plan it twice); the rest hit.
            assert stats.hits >= 4 * 5 - 2
            assert len(server.plan_cache) == 1
        finally:
            server.close()
            cluster.close()


class TestInterleavedWrites:
    def test_counts_are_consistent_snapshots_under_writes(self):
        """Readers hammer COUNT(*) while a writer inserts one order at a
        time.  Every observed count must be a value some prefix of the
        insert sequence produces — never a torn or stale read — and the
        final state must equal a cluster built fresh from the final data."""
        base_rows = 60
        inserts = 12
        count_sql = "SELECT COUNT(*) AS n FROM orders o"
        cluster = SimulatedCluster.partition(shop_database(seed=11), _config())
        server = cluster.serve(max_inflight=4, queue_depth=256)
        observed: list[int] = []
        observed_lock = threading.Lock()
        failures: list[str] = []
        stop = threading.Event()
        new_rows = [
            (9000 + k, k % 20, float(k)) for k in range(inserts)
        ]

        def writer():
            try:
                for row in new_rows:
                    server.insert("orders", [row])
            finally:
                stop.set()

        def reader(index: int):
            session = server.session(f"reader-{index}")
            while True:
                finished = stop.is_set()
                try:
                    (count,), = session.execute(count_sql, timeout=60).rows
                except Exception as error:  # noqa: BLE001 - collected
                    failures.append(repr(error))
                    return
                with observed_lock:
                    observed.append(count)
                if finished:
                    return

        try:
            _run_threads([writer] + [lambda i=i: reader(i) for i in range(4)])
            final = server.execute(count_sql).rows
            served = {sql: server.execute(sql).rows for sql in QUERIES}
        finally:
            server.close()
            cluster.close()
        assert not failures, failures[:3]
        valid = {base_rows + k for k in range(inserts + 1)}
        assert set(observed) <= valid, sorted(set(observed) - valid)
        assert final == [(base_rows + inserts,)]
        # Last reads ran after the final insert: the tail must be fresh.
        assert observed[-1] == base_rows + inserts
        fresh_db = shop_database(seed=11)
        fresh_db.load("orders", new_rows)
        fresh = SimulatedCluster.partition(fresh_db, _config())
        try:
            for sql, rows in served.items():
                assert_same_rows(rows, fresh.sql(sql).rows)
        finally:
            fresh.close()

    def test_mixed_read_write_workload_ends_consistent(self):
        """Readers run the whole query mix while two writers interleave
        inserts into different tables; afterwards every query must match
        a fresh cluster over the final data."""
        cluster = SimulatedCluster.partition(shop_database(seed=13), _config())
        server = cluster.serve(max_inflight=4, queue_depth=256)
        failures: list[str] = []
        order_rows = [(9100 + k, k % 20, 10.0 * k) for k in range(6)]
        item_rows = [(9100 + k, f"item{9100 + k}") for k in range(6)]

        def order_writer():
            for row in order_rows:
                server.insert("orders", [row])

        def item_writer():
            for row in item_rows:
                server.insert("item", [row])

        def reader(index: int):
            session = server.session(f"mixed-{index}")
            for step in range(10):
                sql = QUERIES[(index + step) % len(QUERIES)]
                try:
                    session.execute(sql, timeout=60)
                except Exception as error:  # noqa: BLE001 - collected
                    failures.append(repr(error))

        try:
            _run_threads(
                [order_writer, item_writer]
                + [lambda i=i: reader(i) for i in range(4)]
            )
            served = {sql: server.execute(sql).rows for sql in QUERIES}
        finally:
            server.close()
            cluster.close()
        assert not failures, failures[:3]
        fresh_db = shop_database(seed=13)
        fresh_db.load("orders", order_rows)
        fresh_db.load("item", item_rows)
        fresh = SimulatedCluster.partition(fresh_db, _config())
        try:
            for sql, rows in served.items():
                assert_same_rows(rows, fresh.sql(sql).rows)
        finally:
            fresh.close()


class TestMigrationAsWrite:
    def test_readers_see_old_or_new_placement_never_mixed(self):
        """Readers hammer the query mix while a thread repartitions the
        cluster online.  The data never changes, so every answer — taken
        before, during, or after the migration — must equal the
        reference; a read against a half-migrated store would diverge."""
        cluster = SimulatedCluster.partition(shop_database(seed=11), _config())
        reference = {sql: cluster.sql(sql).rows for sql in QUERIES}
        # No result cache: every read must actually hit the store.
        server = cluster.serve(
            max_inflight=4, queue_depth=256, result_cache_size=0
        )
        failures: list[str] = []
        stop = threading.Event()
        new_config = _patched_config()

        def migrator():
            try:
                time.sleep(0.02)  # let readers observe the old placement
                plan = server.migrate(new_config)
                if plan.copies_moved == 0:
                    failures.append("migration moved nothing")
            except Exception as error:  # noqa: BLE001 - collected
                failures.append(f"migrate: {error!r}")
            finally:
                stop.set()

        def reader(index: int):
            session = server.session(f"migrating-reader-{index}")
            step = 0
            while True:
                finished = stop.is_set()
                sql = QUERIES[(index + step) % len(QUERIES)]
                step += 1
                try:
                    rows = session.execute(sql, timeout=60).rows
                except Exception as error:  # noqa: BLE001 - collected
                    failures.append(f"{sql!r}: {error!r}")
                    return
                if normalise_rows(rows) != normalise_rows(reference[sql]):
                    failures.append(f"{sql!r}: diverged during migration")
                if finished:
                    return

        try:
            _run_threads([migrator] + [lambda i=i: reader(i) for i in range(4)])
            served = {sql: server.execute(sql).rows for sql in QUERIES}
            summary = server.metrics_summary()
        finally:
            server.close()
            cluster.close()
        assert not failures, failures[:5]
        assert cluster.config is new_config
        assert summary["errors"] == 0
        # The swapped-in store is a real patched layout, not a no-op.
        check_pref_invariants(cluster.partitioned, new_config, exact=True)
        assert cluster.partitioned.table("customer").patch_count > 0
        fresh = SimulatedCluster.partition(
            shop_database(seed=11), _patched_config()
        )
        try:
            for sql, rows in served.items():
                assert_same_rows(rows, fresh.sql(sql).rows)
        finally:
            fresh.close()

    def test_writes_and_caches_work_after_migration(self):
        """After an online migration the server keeps serving: epochs
        restart against the new configuration, the loader targets the
        new layout, and dependent answers move on the next write."""
        count_sql = "SELECT COUNT(*) AS n FROM customer c"
        join_sql = QUERIES[2]
        cluster = SimulatedCluster.partition(shop_database(seed=11), _config())
        server = cluster.serve(max_inflight=4, queue_depth=256)
        try:
            # Warm both caches under the old placement.
            before_join = server.execute(join_sql).rows
            server.execute(count_sql)
            server.migrate(_patched_config())
            # Caches were cleared wholesale, not served stale.
            assert len(server.plan_cache) == 0
            assert len(server.result_cache) == 0
            assert server.epochs.current("customer") == 0
            assert_same_rows(server.execute(join_sql).rows, before_join)
            (count_before,) = server.execute(count_sql).rows[0]
            server.insert("customer", [(990, "cust990", 1)])
            # The insert bumps the fresh epoch tracker and lands in the
            # migrated layout without breaking its invariants.
            assert server.epochs.current("customer") > 0
            (count_after,) = server.execute(count_sql).rows[0]
            assert count_after == count_before + 1
            check_pref_invariants(cluster.partitioned, cluster.config)
            assert server.metrics.counter("serve.migrations") == 1
        finally:
            server.close()
            cluster.close()
