"""Tests for column and data-type definitions."""

import pytest

from repro.catalog import Column, DataType
from repro.errors import CatalogError


class TestDataType:
    def test_every_type_has_a_byte_width(self):
        for dtype in DataType:
            assert dtype.byte_width > 0

    def test_every_type_accepts_python_types(self):
        for dtype in DataType:
            assert dtype.python_types

    def test_varchar_wider_than_integer(self):
        assert DataType.VARCHAR.byte_width > DataType.INTEGER.byte_width


class TestColumn:
    def test_accepts_matching_value(self):
        assert Column("a", DataType.INTEGER).accepts(42)
        assert Column("a", DataType.VARCHAR).accepts("x")
        assert Column("a", DataType.FLOAT).accepts(1.5)
        assert Column("a", DataType.FLOAT).accepts(2)  # ints are numeric

    def test_rejects_wrong_type(self):
        assert not Column("a", DataType.INTEGER).accepts("42")
        assert not Column("a", DataType.VARCHAR).accepts(42)

    def test_null_requires_nullable(self):
        assert not Column("a", DataType.INTEGER).accepts(None)
        assert Column("a", DataType.INTEGER, nullable=True).accepts(None)

    def test_invalid_name_rejected(self):
        with pytest.raises(CatalogError):
            Column("not a name", DataType.INTEGER)
        with pytest.raises(CatalogError):
            Column("", DataType.INTEGER)

    def test_byte_width_from_dtype(self):
        assert Column("a", DataType.BIGINT).byte_width == DataType.BIGINT.byte_width
