"""Tests for the configuration enumerator (Listing 1 + multi-seed)."""

import pytest

from helpers import shop_database
from repro.design import (
    RedundancyEstimator,
    SchemaGraph,
    find_optimal_config,
    is_redundancy_free,
)
from repro.design.spanning import maximum_spanning_forest
from repro.partitioning import (
    HashScheme,
    JoinPredicate,
    PartitioningConfig,
    PrefScheme,
    SchemeKind,
)


@pytest.fixture(scope="module")
def setup():
    database = shop_database(seed=8, orphans=False)
    graph = SchemaGraph.from_schema(
        database.schema, database.table_sizes(), exclude=["nation"]
    )
    mast = maximum_spanning_forest(graph)
    estimator = RedundancyEstimator(database, 4)
    return database, graph, mast, estimator


class TestFindOptimalConfig:
    def test_single_seed_configuration(self, setup):
        database, graph, mast, estimator = setup
        result = find_optimal_config(
            mast, graph.tables, database.schema, estimator, 4
        )
        assert len(result.seeds) == 1
        assert len(result.kept_edges) == len(mast)
        assert result.cut_edges == ()
        result.config.validate(database.schema)
        # Every non-seed table is PREF-chained to the seed.
        for table in result.config.tables:
            assert result.config.seed_of(table) == result.seeds[0]

    def test_seed_hash_columns_from_heaviest_edge(self, setup):
        database, graph, mast, estimator = setup
        result = find_optimal_config(
            mast, graph.tables, database.schema, estimator, 4
        )
        seed = result.seeds[0]
        seed_scheme = result.config.scheme_of(seed)
        assert isinstance(seed_scheme, HashScheme)
        incident = [e for e in mast if seed in e.tables]
        heaviest = max(incident, key=lambda e: e.weight)
        assert seed_scheme.columns == heaviest.predicate.columns_of(seed)

    def test_constraints_force_multiple_seeds(self, setup):
        database, graph, mast, estimator = setup
        tables = frozenset(graph.tables)
        result = find_optimal_config(
            mast,
            graph.tables,
            database.schema,
            estimator,
            4,
            no_redundancy=tables,
        )
        for table in tables:
            assert is_redundancy_free(table, result.config, database.schema)
        # The shop graph needs a cut: item cannot be reached duplicate-free.
        assert len(result.seeds) >= 2
        assert len(result.cut_edges) == len(result.seeds) - 1

    def test_cut_maximises_kept_weight(self, setup):
        database, graph, mast, estimator = setup
        result = find_optimal_config(
            mast,
            graph.tables,
            database.schema,
            estimator,
            4,
            no_redundancy=frozenset(graph.tables),
        )
        # The cut edge must be among the lightest feasible choices: its
        # weight cannot exceed the heaviest MAST edge.
        cut_weight = sum(e.weight for e in result.cut_edges)
        heaviest = max(e.weight for e in mast)
        assert cut_weight < heaviest

    def test_isolated_table_gets_pk_hash(self, setup):
        database, _graph, _mast, estimator = setup
        result = find_optimal_config(
            [], ["customer"], database.schema, estimator, 4
        )
        scheme = result.config.scheme_of("customer")
        assert scheme.kind is SchemeKind.HASH
        assert scheme.columns == ("custkey",)


class TestIsRedundancyFree:
    def test_pk_chain_is_free(self, setup):
        database, *_ = setup
        config = PartitioningConfig(4)
        config.add("customer", HashScheme(("custkey",), 4))
        config.add(
            "orders",
            PrefScheme(
                "customer",
                JoinPredicate.equi("orders", "custkey", "customer", "custkey"),
            ),
        )
        assert is_redundancy_free("orders", config, database.schema)

    def test_non_pk_reference_is_not_free(self, setup):
        database, *_ = setup
        config = PartitioningConfig(4)
        config.add("orders", HashScheme(("orderkey",), 4))
        config.add(
            "customer",
            PrefScheme(
                "orders",
                JoinPredicate.equi("customer", "custkey", "orders", "custkey"),
            ),
        )
        # orders.custkey is not the orders primary key: duplicates likely.
        assert not is_redundancy_free("customer", config, database.schema)
