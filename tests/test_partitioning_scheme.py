"""Tests for scheme descriptors, predicates and the stable hash."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

import repro.partitioning.scheme as _scheme_module
from repro.errors import PartitioningError
from repro.partitioning import (
    HashScheme,
    JoinPredicate,
    PrefScheme,
    RangeScheme,
    ReplicatedScheme,
    RoundRobinScheme,
    SchemeKind,
    set_string_hash_cache_capacity,
    stable_hash,
    string_hash_cache_info,
)


class TestJoinPredicate:
    def test_equi_constructor(self):
        predicate = JoinPredicate.equi("a", "x", "b", "y")
        assert predicate.tables == frozenset({"a", "b"})
        assert predicate.columns_of("a") == ("x",)
        assert predicate.columns_of("b") == ("y",)
        assert predicate.other_table("a") == "b"

    def test_normalised_orientation(self):
        forward = JoinPredicate.equi("a", "x", "b", "y")
        backward = JoinPredicate.equi("b", "y", "a", "x")
        assert forward.equivalent(backward)
        assert forward.normalised() == backward.normalised()

    def test_composite(self):
        predicate = JoinPredicate("a", ("x1", "x2"), "b", ("y1", "y2"))
        assert list(predicate.conjuncts()) == [("x1", "y1"), ("x2", "y2")]

    def test_arity_mismatch_rejected(self):
        with pytest.raises(PartitioningError):
            JoinPredicate("a", ("x",), "b", ("y1", "y2"))

    def test_same_table_rejected(self):
        with pytest.raises(PartitioningError):
            JoinPredicate.equi("a", "x", "a", "y")

    def test_unknown_table_lookup(self):
        predicate = JoinPredicate.equi("a", "x", "b", "y")
        with pytest.raises(PartitioningError):
            predicate.columns_of("c")


class TestSchemes:
    def test_hash_partition_of_in_range(self):
        scheme = HashScheme(("k",), 7)
        for key in range(100):
            assert 0 <= scheme.partition_of(key) < 7

    def test_hash_needs_columns(self):
        with pytest.raises(PartitioningError):
            HashScheme((), 4)

    def test_range_scheme_boundaries(self):
        scheme = RangeScheme("k", (10, 20))
        assert scheme.partition_count == 3
        assert scheme.partition_of(5) == 0
        assert scheme.partition_of(10) == 0
        assert scheme.partition_of(15) == 1
        assert scheme.partition_of(99) == 2

    def test_range_unsorted_rejected(self):
        with pytest.raises(PartitioningError):
            RangeScheme("k", (20, 10))

    def test_pref_predicate_must_mention_referenced(self):
        predicate = JoinPredicate.equi("r", "x", "s", "y")
        PrefScheme("s", predicate)  # fine
        with pytest.raises(PartitioningError):
            PrefScheme("zzz", predicate)

    def test_pref_column_accessors(self):
        predicate = JoinPredicate.equi("r", "x", "s", "y")
        scheme = PrefScheme("s", predicate)
        assert scheme.referenced_columns == ("y",)
        assert scheme.referencing_columns("r") == ("x",)

    def test_kinds(self):
        assert HashScheme(("k",), 2).kind is SchemeKind.HASH
        assert RoundRobinScheme(2).kind is SchemeKind.ROUND_ROBIN
        assert ReplicatedScheme(2).kind is SchemeKind.REPLICATED
        assert SchemeKind.PREF.is_seed is False
        assert SchemeKind.HASH.is_seed is True


class TestStableHash:
    def test_deterministic_for_strings(self):
        assert stable_hash("hello") == stable_hash("hello")

    def test_tuple_order_matters(self):
        assert stable_hash((1, 2)) != stable_hash((2, 1))

    def test_int_not_identity(self):
        # Sequential keys must not map to sequential partitions.
        assignments = {stable_hash(k) % 10 for k in range(0, 50, 5)}
        assert len(assignments) > 2

    def test_float_integral_matches_int(self):
        assert stable_hash(2.0) == stable_hash(2)

    def test_none_hashable(self):
        assert stable_hash(None) >= 0

    @given(st.integers())
    def test_nonnegative(self, value):
        assert stable_hash(value) >= 0

    @given(st.integers(min_value=0, max_value=10**6))
    def test_spread_over_partitions(self, value):
        assert 0 <= stable_hash(value) % 16 < 16


class TestStringHashCacheBound:
    """The string memo inside stable_hash is bounded (segmented LRU)."""

    @pytest.fixture(autouse=True)
    def _restore_capacity(self):
        yield
        set_string_hash_cache_capacity(1 << 16)

    def test_residency_never_exceeds_two_generations(self):
        set_string_hash_cache_capacity(8)
        for index in range(100):
            stable_hash(f"key-{index}")
        info = string_hash_cache_info()
        assert info["capacity"] == 8
        assert info["resident"] <= 2 * 8
        # Hashes stay correct whether or not the memo retained them.
        assert stable_hash("key-0") == stable_hash("key-" + "0")

    def test_eviction_drops_cold_untouched_strings(self):
        set_string_hash_cache_capacity(4)
        for index in range(4):
            stable_hash(f"gen1-{index}")  # fills hot
        stable_hash("gen2-0")  # rotates: gen1 becomes the cold generation
        for index in range(1, 4):
            stable_hash(f"gen2-{index}")  # fills hot again
        stable_hash("gen3-0")  # second rotation: untouched gen1 dropped
        info = string_hash_cache_info()
        assert info["resident"] <= 8
        assert all(
            f"gen1-{index}" not in _scheme_module._STRING_HASHES
            and f"gen1-{index}" not in _scheme_module._STRING_HASHES_COLD
            for index in range(4)
        )

    def test_promotion_on_cold_hit_survives_rotation(self):
        set_string_hash_cache_capacity(4)
        for index in range(4):
            stable_hash(f"a-{index}")  # hot generation A
        stable_hash("b-0")  # rotate: A demoted to cold
        survivor = stable_hash("a-0")  # cold hit: promoted back to hot
        for index in range(1, 4):
            stable_hash(f"b-{index}")
        stable_hash("c-0")  # rotate again: unpromoted A entries die
        assert "a-0" in _scheme_module._STRING_HASHES_COLD
        assert "a-1" not in _scheme_module._STRING_HASHES
        assert "a-1" not in _scheme_module._STRING_HASHES_COLD
        assert stable_hash("a-0") == survivor

    def test_zero_capacity_disables_memoisation(self):
        set_string_hash_cache_capacity(0)
        value = stable_hash("nothing-retained")
        info = string_hash_cache_info()
        assert info["resident"] == 0
        assert stable_hash("nothing-retained") == value

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            set_string_hash_cache_capacity(-1)

    def test_partitioning_unchanged_by_capacity(self):
        keys = [f"customer-{index}" for index in range(64)]
        set_string_hash_cache_capacity(1 << 16)
        reference = [stable_hash(key) % 7 for key in keys]
        set_string_hash_cache_capacity(3)
        assert [stable_hash(key) % 7 for key in keys] == reference
        set_string_hash_cache_capacity(0)
        assert [stable_hash(key) % 7 for key in keys] == reference
