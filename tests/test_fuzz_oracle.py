"""The differential fuzzing harness itself: generator, runner, shrinker."""

from repro.fuzz import generate_case, run_case, run_fuzz
from repro.fuzz.ir import build_plan, case_tables, load_case, save_case
from repro.fuzz.oracle import evaluate_query
from repro.fuzz.shrinker import _ddmin, shrink
from repro.fuzz.sqlite_oracle import run_sqlite
from repro.fuzz.differ import rows_equal
from repro.fuzz.__main__ import main


class TestGenerator:
    def test_deterministic_per_seed_and_index(self):
        assert generate_case(5, 3) == generate_case(5, 3)

    def test_distinct_indexes_differ(self):
        cases = [generate_case(0, index) for index in range(8)]
        assert any(case != cases[0] for case in cases[1:])

    def test_cases_are_json_round_trippable(self, tmp_path):
        case = generate_case(1, 2)
        path = tmp_path / "case.json"
        save_case(case, str(path))
        assert load_case(str(path)) == case

    def test_generated_queries_build_plans(self):
        for index in range(10):
            case = generate_case(2, index)
            for query in case["queries"]:
                build_plan(query)  # must not raise


class TestOracles:
    def test_naive_oracle_agrees_with_sqlite(self):
        checked = 0
        for index in range(15):
            case = generate_case(3, index)
            tables = case_tables(case)
            schemas = {
                table["name"]: [
                    (name, dtype) for name, dtype, _null in table["columns"]
                ]
                for table in case["tables"]
            }
            for query in case["queries"]:
                _columns, naive = evaluate_query(tables, query)
                via_sqlite = run_sqlite(schemas, tables, query)
                assert rows_equal(naive, via_sqlite)
                checked += 1
        assert checked > 10


class TestRunner:
    def test_small_batch_is_clean(self):
        report = run_fuzz(
            12, seed=0, backends=("serial", "thread"), shrink_divergent=False
        )
        assert report.ok, report.summary()
        assert report.cases_run == 12
        assert "zero divergences" in report.summary()

    def test_run_case_replays_clean(self):
        case = generate_case(0, 4)
        assert run_case(case, backends=("serial",)) is None


class TestShrinker:
    def test_ddmin_finds_minimal_pair(self):
        wanted = {7, 13}
        reduced = _ddmin(
            list(range(20)), lambda subset: wanted <= set(subset)
        )
        assert sorted(reduced) == [7, 13]

    def test_shrink_keeps_failure_and_reduces(self):
        case = generate_case(0, 432)

        def still_fails(candidate):
            return any(
                row[0] == 58
                for table in candidate["tables"]
                if table["name"] == "t0"
                for row in table["rows"]
            )

        shrunk = shrink(case, still_fails, max_attempts=150)
        assert still_fails(shrunk)
        assert sum(len(t["rows"]) for t in shrunk["tables"]) < sum(
            len(t["rows"]) for t in case["tables"]
        )
        assert len(shrunk["queries"]) <= len(case["queries"])


class TestCli:
    def test_smoke_run_exits_zero(self, capsys):
        assert main(["--cases", "5", "--seed", "1", "--quiet"]) == 0
        assert "zero divergences" in capsys.readouterr().out

    def test_replay_clean_case(self, tmp_path, capsys):
        path = tmp_path / "case.json"
        save_case(generate_case(0, 4), str(path))
        assert main(["--replay", str(path)]) == 0
        assert "no divergence" in capsys.readouterr().out
