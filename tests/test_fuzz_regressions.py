"""Replays of minimised fuzzer repros plus a bug-reintroduction check.

Each regression case is a hand-pinned (or fuzzer-minimised) IR dict run
through the full differential pipeline: partitioning, invariants, all
backends, the rewriter-ablation variant, LocalExecutor, the naive
oracle and sqlite3.  ``run_case`` returning ``None`` means every check
agreed.
"""

from repro.fuzz.runner import run_case, run_fuzz
from repro.query.expressions import Comparison


def _table(name, columns, rows, pk=("id",)):
    return {"name": name, "columns": columns, "pk": list(pk), "rows": rows}


def _case(tables, config, queries, partitions=3, loads=None):
    return {
        "seed": "regression",
        "partitions": partitions,
        "tables": tables,
        "config": config,
        "loads": loads or {},
        "queries": queries,
        "variant": {"optimizations": True, "locality": True},
    }


def _scan(table, alias):
    return {"op": "scan", "table": table, "alias": alias}


def assert_consistent(case):
    divergence = run_case(case, backends=("serial", "thread"))
    assert divergence is None, divergence.describe()


def test_left_outer_group_by_right_key_null_group():
    """Fuzzer find (seed 0, case 433): a co-partitioned LEFT OUTER JOIN
    must not treat a GROUP BY on the *right* join key as partition-local —
    padded rows carry a NULL key in whatever partition their left row
    occupies, and the engine emitted one NULL group per partition."""
    case = _case(
        tables=[
            _table(
                "t0",
                [["id", "integer", False], ["d0", "boolean", True]],
                [[57, False], [58, None]],
            ),
            _table(
                "t2",
                [
                    ["id", "integer", False],
                    ["d0", "integer", False],
                    ["fk_t1", "integer", True],
                ],
                [[58, 0, 52]],
            ),
        ],
        config={
            "t0": {"kind": "hash", "columns": ["id"]},
            "t2": {"kind": "hash", "columns": ["fk_t1"]},
        },
        queries=[
            {
                "op": "aggregate",
                "group_by": ["a1.fk_t1"],
                "aggs": [],
                "input": {
                    "op": "join",
                    "kind": "left_outer",
                    "on": [["a0.id", "a1.fk_t1"]],
                    "residual": None,
                    "left": _scan("t0", "a0"),
                    "right": _scan("t2", "a1"),
                },
            }
        ],
        partitions=4,
    )
    case["variant"] = {"optimizations": True, "locality": False}
    assert_consistent(case)


def test_null_join_keys_never_match():
    """Rows whose join key is NULL pair with nothing — not even other
    NULLs — in inner, semi, anti and outer joins alike."""
    parent = _table("p", [["id", "integer", False]], [[1], [2]])
    child = _table(
        "c",
        [["id", "integer", False], ["fk", "integer", True]],
        [[10, 1], [11, None], [12, None], [13, 9]],
    )
    config = {
        "p": {"kind": "hash", "columns": ["id"]},
        "c": {"kind": "pref", "on": [["fk", "id"]], "referenced": "p"},
    }
    for kind in ("inner", "left_outer", "semi", "anti"):
        join = {
            "op": "join",
            "kind": kind,
            "on": [["a0.fk", "a1.id"]],
            "residual": None,
            "left": _scan("c", "a0"),
            "right": _scan("p", "a1"),
        }
        assert_consistent(_case([parent, child], config, [join]))


def test_null_comparison_filters():
    """col = NULL and col = col keep no rows when NULL is involved."""
    table = _table(
        "t",
        [["id", "integer", False], ["a", "integer", True], ["b", "integer", True]],
        [[1, None, None], [2, 3, 3], [3, None, 4], [4, 5, 6]],
    )
    config = {"t": {"kind": "hash", "columns": ["id"]}}
    colref = lambda name: {"t": "col", "name": name}  # noqa: E731
    predicates = [
        {"t": "cmp", "op": "=", "l": colref("a0.a"), "r": colref("a0.b")},
        {"t": "cmp", "op": "=", "l": colref("a0.a"), "r": {"t": "lit", "v": None}},
        {
            "t": "not",
            "arg": {
                "t": "cmp", "op": "=", "l": colref("a0.a"), "r": colref("a0.b")
            },
        },
    ]
    for predicate in predicates:
        query = {"op": "filter", "pred": predicate, "input": _scan("t", "a0")}
        assert_consistent(_case([table], config, [query]))


def test_in_list_with_null_semantics():
    """x IN / NOT IN with NULLs on either side of the list."""
    table = _table(
        "t",
        [["id", "integer", False], ["v", "integer", True]],
        [[1, 1], [2, 3], [3, None]],
    )
    config = {"t": {"kind": "round_robin"}}
    needle = {"t": "col", "name": "a0.v"}
    for vals, neg in [([1, None], False), ([1, None], True), ([], True), ([5], True)]:
        query = {
            "op": "filter",
            "pred": {"t": "inlist", "arg": needle, "vals": vals, "neg": neg},
            "input": _scan("t", "a0"),
        }
        assert_consistent(_case([table], config, [query]))


def test_all_null_aggregates():
    """SUM/AVG/MIN/MAX over all-NULL input are NULL; COUNT skips NULLs —
    including through merged two-phase partials."""
    table = _table(
        "t",
        [["id", "integer", False], ["g", "integer", False], ["v", "integer", True]],
        [[1, 0, None], [2, 0, None], [3, 1, 4], [4, 1, None], [5, 0, None]],
    )
    config = {"t": {"kind": "hash", "columns": ["id"]}}
    value = {"t": "col", "name": "a0.v"}
    query = {
        "op": "aggregate",
        "group_by": ["a0.g"],
        "aggs": [
            ["sum", value, "z0"],
            ["avg", value, "z1"],
            ["min", value, "z2"],
            ["max", value, "z3"],
            ["count", value, "z4"],
            ["count", None, "z5"],
        ],
        "input": _scan("t", "a0"),
    }
    assert_consistent(_case([table], config, [query]))


def test_reintroducing_null_equals_null_is_caught(tmp_path, monkeypatch):
    """Meta-check: patch the NULL=NULL bug back in and the fuzzer must
    fail within the CI budget, producing a minimised, replayable repro."""
    original_bind = Comparison.bind

    def buggy_bind(self, columns):
        bound = original_bind(self, columns)
        left = self.left.bind(columns)
        right = self.right.bind(columns)
        op = self.op

        def evaluate(row):
            lhs, rhs = left(row), right(row)
            if lhs is None or rhs is None:
                # The pre-fix behaviour: NULL = NULL was true.
                if op == "=":
                    return lhs is rhs
                if op == "!=":
                    return lhs is not rhs
                return False
            return bound(row)

        return evaluate

    monkeypatch.setattr(Comparison, "bind", buggy_bind)
    out = tmp_path / "bug-repro.json"
    report = run_fuzz(
        60,
        seed=0,
        backends=("serial",),
        check_sqlite=False,
        out=str(out),
        max_shrink=120,
    )
    assert not report.ok, "fuzzer failed to catch the reintroduced bug"
    assert report.shrunk_case is not None
    assert out.exists()
    # The minimised repro still reproduces under the bug...
    assert run_case(report.shrunk_case, backends=("serial",), check_sqlite=False)
    # ...and is clean once the bug is removed again.
    monkeypatch.setattr(Comparison, "bind", original_bind)
    assert (
        run_case(report.shrunk_case, backends=("serial",), check_sqlite=False)
        is None
    )
