"""Backend equivalence and the execution-engine facade.

The engine's contract is that every scheduling backend produces identical
rows *and* identical :class:`ExecutionStats` for any plan — parallelism
may change wall-clock interleaving, never the simulated cost model.  This
suite pins that contract on all 22 TPC-H queries (under the schema-driven
PREF design) and on skewed TPC-DS SQL, and covers the facade plumbing:
the cluster's default backend, cost-parameter stamping on results, the
``locality`` ablation switch, per-operator stats, and trace hooks.
"""

import subprocess
import sys

import pytest

from helpers import assert_same_rows, pref_chain_config
from repro.bench import Variant, materialize_variant, tpch_variants
from repro.cluster import SimulatedCluster
from repro.design import QuerySpec, SchemaDrivenDesigner
from repro.engine import (
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    format_operator_stats,
    make_backend,
)
from repro.query import CostParameters, Executor, LocalExecutor
from repro.sql import sql_to_plan
from repro.workloads.tpcds import (
    SMALL_TABLES as TPCDS_SMALL_TABLES,
    generate_tpcds,
)
from repro.workloads.tpch import ALL_QUERIES, SMALL_TABLES


def canonical_stats(stats):
    """Every observable of the cost model, as a comparable tuple."""
    return stats.canonical()


# -- TPC-H: all 22 queries, serial vs thread vs process vs local reference --


@pytest.fixture(scope="module")
def tpch_engines(small_tpch):
    specs = [
        QuerySpec.from_plan(name, build(), small_tpch.schema)
        for name, build in ALL_QUERIES.items()
    ]
    variants = tpch_variants(small_tpch, 5, specs, SMALL_TABLES)
    [partitioned] = materialize_variant(
        small_tpch, variants["SD (wo small tables)"]
    )
    pool = ThreadPoolBackend(max_workers=4)
    serial = Executor(partitioned, backend=SerialBackend())
    threaded = Executor(partitioned, backend=pool)
    forked = Executor(partitioned, backend=ProcessPoolBackend(max_workers=2))
    local = LocalExecutor(small_tpch)
    yield serial, threaded, forked, local
    pool.close()


@pytest.mark.parametrize("name", list(ALL_QUERIES))
def test_tpch_backends_identical(tpch_engines, name):
    serial, threaded, forked, local = tpch_engines
    build = ALL_QUERIES[name]
    serial_result = serial.execute(build())
    threaded_result = threaded.execute(build())
    forked_result = forked.execute(build())
    # Rows must match exactly (same values, same order), not just as sets:
    # concurrent backends reorder work, never output.
    assert threaded_result.rows == serial_result.rows
    assert canonical_stats(threaded_result.stats) == canonical_stats(
        serial_result.stats
    )
    assert forked_result.rows == serial_result.rows
    assert canonical_stats(forked_result.stats) == canonical_stats(
        serial_result.stats
    )
    reference = local.execute(build())
    assert_same_rows(serial_result.rows, reference.rows, places=4)


def test_tpch_operator_stats_reconcile(tpch_engines):
    serial, _threaded, _forked, _local = tpch_engines
    result = serial.execute(ALL_QUERIES["Q3"]())
    operators = result.operators
    assert operators, "QueryResult.operators should expose the physical plan"
    assert sum(op.network_bytes for op in operators) == result.stats.network_bytes
    assert sum(op.shuffles for op in operators) == result.stats.shuffle_count
    assert (
        sum(op.partitions_scanned for op in operators)
        == result.stats.partitions_scanned
    )
    totals = [0.0] * len(result.stats.node_work)
    for op in operators:
        for node, work in enumerate(op.node_work):
            totals[node] += work
    assert totals == result.stats.node_work


# -- TPC-DS: skewed data, SQL front end ------------------------------------

TPCDS_QUERIES = {
    "yearly_revenue": (
        "SELECT d.d_year AS year, COUNT(*) AS n, SUM(ss.ss_net_paid) AS rev "
        "FROM store_sales ss, date_dim d "
        "WHERE ss.ss_sold_date_sk = d.d_date_sk AND ss.ss_quantity > 2 "
        "GROUP BY d.d_year ORDER BY year"
    ),
    "top_brands": (
        "SELECT i.i_brand AS brand, SUM(ss.ss_quantity) AS qty "
        "FROM store_sales ss JOIN item i ON ss.ss_item_sk = i.i_item_sk "
        "GROUP BY i.i_brand ORDER BY qty DESC, brand LIMIT 10"
    ),
    "returned_lines": (
        "SELECT COUNT(*) AS n FROM store_sales ss, store_returns sr "
        "WHERE ss.ss_ticket_number = sr.sr_ticket_number "
        "AND ss.ss_item_sk = sr.sr_item_sk"
    ),
    "items_sold_in_bulk": (
        "SELECT COUNT(*) AS n FROM item i WHERE EXISTS "
        "(SELECT * FROM store_sales ss "
        "WHERE ss.ss_item_sk = i.i_item_sk AND ss.ss_quantity > 8)"
    ),
}


@pytest.fixture(scope="module")
def tpcds_engines():
    database = generate_tpcds(scale_factor=0.0002, seed=11)
    sd = SchemaDrivenDesigner(database, 4).design(
        replicate=TPCDS_SMALL_TABLES
    )
    [partitioned] = materialize_variant(database, Variant("SD", [sd.config]))
    pool = ThreadPoolBackend(max_workers=4)
    serial = Executor(partitioned, backend=SerialBackend())
    threaded = Executor(partitioned, backend=pool)
    forked = Executor(partitioned, backend=ProcessPoolBackend(max_workers=2))
    local = LocalExecutor(database)
    yield database, serial, threaded, forked, local
    pool.close()


@pytest.mark.parametrize("name", list(TPCDS_QUERIES))
def test_tpcds_backends_identical(tpcds_engines, name):
    database, serial, threaded, forked, local = tpcds_engines
    plan = sql_to_plan(TPCDS_QUERIES[name], database.schema)
    serial_result = serial.execute(plan)
    threaded_result = threaded.execute(plan)
    forked_result = forked.execute(plan)
    assert threaded_result.rows == serial_result.rows
    assert canonical_stats(threaded_result.stats) == canonical_stats(
        serial_result.stats
    )
    assert forked_result.rows == serial_result.rows
    assert canonical_stats(forked_result.stats) == canonical_stats(
        serial_result.stats
    )
    reference = local.execute(plan)
    assert_same_rows(serial_result.rows, reference.rows, places=4)


# -- facade plumbing --------------------------------------------------------


class TestClusterFacade:
    def test_default_backend_is_thread_pool(self, shop_db):
        cluster = SimulatedCluster.partition(shop_db, pref_chain_config(4))
        try:
            assert isinstance(cluster.backend, ThreadPoolBackend)
            assert cluster.executor.backend is cluster.backend
        finally:
            cluster.close()

    @pytest.mark.parametrize(
        "name,kind",
        [
            ("serial", SerialBackend),
            ("thread", ThreadPoolBackend),
            ("thread_pool", ThreadPoolBackend),
            ("process", ProcessPoolBackend),
            ("process_pool", ProcessPoolBackend),
        ],
    )
    def test_backend_selected_by_name(self, shop_db, name, kind):
        cluster = SimulatedCluster.partition(
            shop_db, pref_chain_config(4), backend=name
        )
        try:
            assert isinstance(cluster.backend, kind)
            result = cluster.sql("SELECT COUNT(*) AS n FROM orders o")
            assert result.rows == [(60,)]
        finally:
            cluster.close()

    def test_make_backend_rejects_unknown_name(self):
        with pytest.raises(ValueError, match="unknown engine backend"):
            make_backend("distributed-mainframe")
        backend = SerialBackend()
        assert make_backend(backend) is backend
        assert make_backend(None) is None

    def test_result_carries_cluster_cost(self, shop_db):
        cost = CostParameters(network_bandwidth_bytes=1e6, row_scale=100.0)
        cluster = SimulatedCluster.partition(
            shop_db, pref_chain_config(4), cost=cost
        )
        try:
            result = cluster.sql(
                "SELECT COUNT(*) AS n FROM orders o, lineitem l "
                "WHERE o.orderkey = l.orderkey"
            )
            assert result.cost is cost
            # The no-argument form must price with the cluster's
            # parameters, not the library defaults.
            assert result.simulated_seconds() == pytest.approx(
                result.stats.simulated_seconds(cost)
            )
            assert result.simulated_seconds() != pytest.approx(
                result.stats.simulated_seconds(CostParameters())
            )
        finally:
            cluster.close()

    def test_locality_ablation_shuffles_copartitioned_joins(self, shop_db):
        config = pref_chain_config(4)
        aware = SimulatedCluster.partition(
            shop_db, config, backend=SerialBackend()
        )
        unaware = SimulatedCluster.partition(
            shop_db, config, locality=False, backend=SerialBackend()
        )
        sql = (
            "SELECT c.cname, COUNT(*) AS n FROM customer c, orders o "
            "WHERE c.custkey = o.custkey GROUP BY c.cname ORDER BY c.cname"
        )
        with_locality = aware.sql(sql)
        without_locality = unaware.sql(sql)
        assert_same_rows(without_locality.rows, with_locality.rows)
        assert (
            without_locality.stats.shuffle_count
            > with_locality.stats.shuffle_count
        )
        assert (
            without_locality.stats.network_bytes
            > with_locality.stats.network_bytes
        )


@pytest.mark.parametrize(
    "module",
    ["repro.cluster", "repro.engine", "repro.query", "repro.engine.operators"],
)
def test_package_first_import_order(module):
    """repro.engine and repro.query import each other's submodules; every
    package must be importable first without re-entering a half-initialised
    module (regression: ``import repro.cluster`` before ``repro.query``)."""
    subprocess.run(
        [sys.executable, "-c", f"import {module}"],
        check=True,
        capture_output=True,
    )


class TestObservability:
    def test_trace_hook_sees_every_phase(self, shop_db, shop_pref):
        partitioned, _config = shop_pref
        events = []
        executor = Executor(partitioned, trace=events.append)
        executor.execute(
            sql_to_plan(
                "SELECT o.custkey, SUM(o.total) AS s FROM orders o "
                "GROUP BY o.custkey ORDER BY s DESC LIMIT 3",
                shop_db.schema,
            )
        )
        assert events
        assert {event.phase for event in events} <= {
            "prepare",
            "exchange",
            "partition",
        }
        assert "partition" in {event.phase for event in events}
        assert all(event.seconds >= 0.0 for event in events)

    def test_explain_operators_renders_table(self, shop_db, shop_pref):
        partitioned, _config = shop_pref
        executor = Executor(partitioned)
        result = executor.execute(
            sql_to_plan(
                "SELECT COUNT(*) AS n FROM orders o, lineitem l "
                "WHERE o.orderkey = l.orderkey",
                shop_db.schema,
            )
        )
        text = result.explain_operators()
        assert text == format_operator_stats(result.operators)
        for op in result.operators:
            assert op.label.split()[0] in text
