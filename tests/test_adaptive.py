"""Patched-PREF placement, adaptive detection, and online repartitioning."""

from __future__ import annotations

import pytest

from helpers import (
    all_hashed_config,
    assert_same_rows,
    shop_database,
)
from repro.catalog import DatabaseSchema, DataType
from repro.cluster import SimulatedCluster
from repro.errors import InvalidConfigurationError, PartitioningError
from repro.partitioning import (
    AdaptiveReport,
    AdaptiveThresholds,
    BulkLoader,
    HashScheme,
    InvariantViolation,
    JoinPredicate,
    PartitioningConfig,
    PatchedPrefScheme,
    PrefScheme,
    ReplicatedScheme,
    TableHotspot,
    check_pref_invariants,
    detect_hotspots,
    partition_database,
    recommend_patched_pref,
)
from repro.storage import Database


def mini_schema() -> DatabaseSchema:
    schema = DatabaseSchema()
    schema.create_table(
        "s",
        [("sk", DataType.INTEGER), ("grp", DataType.INTEGER)],
        primary_key=["sk"],
    )
    schema.create_table(
        "r",
        [("rk", DataType.INTEGER), ("grp", DataType.INTEGER)],
        primary_key=["rk"],
    )
    return schema


def mini_database() -> Database:
    """r references s on a non-unique group key.

    Every group has three ``s`` rows scattered by the hash on ``sk``, so
    most ``r`` tuples have more than one partner partition; ``r`` also
    carries an orphan (grp 99) and a NULL-key row.
    """
    database = Database(mini_schema())
    database.load("s", [(sk, sk % 4) for sk in range(12)])
    rows = [(rk, rk % 4) for rk in range(20)]
    rows.append((20, 99))
    rows.append((21, None))
    database.load("r", rows)
    return database


def mini_config(n: int = 4, max_copies: int | None = 1) -> PartitioningConfig:
    config = PartitioningConfig(n)
    config.add("s", HashScheme(("sk",), n))
    predicate = JoinPredicate.equi("r", "grp", "s", "grp")
    if max_copies is None:
        config.add("r", PrefScheme("s", predicate))
    else:
        config.add(
            "r", PatchedPrefScheme("s", predicate, max_copies=max_copies)
        )
    return config


def _copies_of(table) -> dict[int, set[int]]:
    copies: dict[int, set[int]] = {}
    for partition in table.partitions:
        for source_id in partition.source_ids:
            copies.setdefault(source_id, set()).add(partition.partition_id)
    return copies


def patched_shop_config(n: int = 4, max_copies: int = 1) -> PartitioningConfig:
    config = PartitioningConfig(n)
    config.add("lineitem", HashScheme(("linekey",), n))
    config.add(
        "orders",
        PatchedPrefScheme(
            "lineitem",
            JoinPredicate.equi("orders", "orderkey", "lineitem", "orderkey"),
            max_copies=max_copies,
        ),
    )
    config.add("customer", HashScheme(("custkey",), n))
    config.add("item", HashScheme(("itemkey",), n))
    config.add("nation", ReplicatedScheme(n))
    return config


def plain_shop_config(n: int = 4) -> PartitioningConfig:
    config = PartitioningConfig(n)
    config.add("lineitem", HashScheme(("linekey",), n))
    config.add(
        "orders",
        PrefScheme(
            "lineitem",
            JoinPredicate.equi("orders", "orderkey", "lineitem", "orderkey"),
        ),
    )
    config.add("customer", HashScheme(("custkey",), n))
    config.add("item", HashScheme(("itemkey",), n))
    config.add("nation", ReplicatedScheme(n))
    return config


class TestPatchedPlacement:
    def test_max_copies_validated(self):
        with pytest.raises(PartitioningError):
            PatchedPrefScheme(
                "s", JoinPredicate.equi("r", "grp", "s", "grp"), max_copies=0
            )

    def test_cap_binds_and_invariants_hold(self):
        partitioned = partition_database(mini_database(), mini_config())
        check_pref_invariants(partitioned, mini_config(), exact=True)
        r = partitioned.table("r")
        assert r.patch_count > 0
        assert max(r.stored_copy_counts().values()) == 1

    def test_stored_plus_patched_equals_plain_pref_placement(self):
        """The capped layout covers exactly the partitions plain PREF
        stores into: overflow moved to the patch lists, nothing lost."""
        database = mini_database()
        plain = partition_database(database, mini_config(max_copies=None))
        patched = partition_database(database, mini_config(max_copies=1))
        plain_copies = _copies_of(plain.table("r"))
        patched_r = patched.table("r")
        patched_copies = _copies_of(patched_r)
        assert plain_copies.keys() == patched_copies.keys()
        for source_id, expected in plain_copies.items():
            stored = patched_copies[source_id]
            combined = stored | set(patched_r.patch_partitions_of(source_id))
            assert combined == expected
            assert len(stored) <= 1

    def test_null_key_row_never_patched(self):
        partitioned = partition_database(mini_database(), mini_config())
        r = partitioned.table("r")
        for partition in r.partitions:
            for index, row in enumerate(partition.rows):
                if row[1] is None:
                    assert not partition.has_partner[index]
                    assert not partition.dup[index]
                    source_id = partition.source_ids[index]
                    assert not r.patch_partitions_of(source_id)
        assert all(
            row[1] is not None
            for entries in r.patches.values()
            for row, _source in entries
        )

    def test_chained_pref_onto_patched_table_rejected(self):
        config = mini_config()
        config.add(
            "t", PrefScheme("r", JoinPredicate.equi("t", "grp", "r", "grp"))
        )
        schema = mini_schema()
        schema.create_table(
            "t",
            [("tk", DataType.INTEGER), ("grp", DataType.INTEGER)],
            primary_key=["tk"],
        )
        with pytest.raises(InvalidConfigurationError, match="patched"):
            config.validate(schema)


class TestPatchedInvariantTeeth:
    def test_plain_placement_fails_patched_cap(self):
        """A layout that stores more copies than ``max_copies`` is caught
        when checked against the patched configuration."""
        database = mini_database()
        plain = partition_database(database, mini_config(max_copies=None))
        with pytest.raises(InvariantViolation, match="max_copies"):
            check_pref_invariants(plain, mini_config(max_copies=1))

    def test_dropped_patch_entry_detected(self):
        partitioned = partition_database(mini_database(), mini_config())
        r = partitioned.table("r")
        patches = {
            pid: list(entries) for pid, entries in r.patches.items()
        }
        pid = next(iter(patches))
        patches[pid] = patches[pid][1:]
        r.replace_patches(patches)
        with pytest.raises(InvariantViolation, match="missing from"):
            check_pref_invariants(partitioned, mini_config())

    def test_stored_and_patched_double_placement_detected(self):
        partitioned = partition_database(mini_database(), mini_config())
        r = partitioned.table("r")
        partition = next(p for p in r.partitions if p.rows)
        source_id = partition.source_ids[0]
        r.add_patch(
            partition.partition_id, tuple(partition.rows[0]), source_id
        )
        with pytest.raises(InvariantViolation, match="both stored in"):
            check_pref_invariants(partitioned, mini_config())

    def test_partnerless_duplicate_still_fails(self):
        """The patched relaxations must not mask the core rule: a
        genuinely partner-less non-patch tuple stored twice is still a
        violation."""
        partitioned = partition_database(mini_database(), mini_config())
        r = partitioned.table("r")
        home = next(
            p
            for p in r.partitions
            for row in p.rows
            if tuple(row) == (20, 99)
        )
        index = [tuple(row) for row in home.rows].index((20, 99))
        source_id = home.source_ids[index]
        other = r.partitions[(home.partition_id + 1) % r.partition_count]
        other.append((20, 99), source_id, duplicate=True, has_partner=False)
        with pytest.raises(InvariantViolation, match="expected exactly 1"):
            check_pref_invariants(partitioned, mini_config())

    def test_partnerless_patch_entry_detected(self):
        partitioned = partition_database(mini_database(), mini_config())
        r = partitioned.table("r")
        home = next(
            p
            for p in r.partitions
            for row in p.rows
            if tuple(row) == (20, 99)
        )
        index = [tuple(row) for row in home.rows].index((20, 99))
        source_id = home.source_ids[index]
        target = (home.partition_id + 1) % r.partition_count
        r.add_patch(target, (20, 99), source_id)
        with pytest.raises(InvariantViolation, match="partner-less"):
            check_pref_invariants(partitioned, mini_config())


EQUIVALENCE_QUERIES = (
    "SELECT COUNT(*) AS n FROM orders o",
    "SELECT SUM(o.total) AS t FROM orders o",
    (
        "SELECT o.orderkey, SUM(l.qty) AS q FROM orders o "
        "JOIN lineitem l ON o.orderkey = l.orderkey GROUP BY o.orderkey"
    ),
    (
        "SELECT COUNT(*) AS n FROM orders o "
        "JOIN lineitem l ON o.orderkey = l.orderkey WHERE o.total > 50.0"
    ),
    (
        "SELECT c.cname, COUNT(*) AS n FROM customer c "
        "JOIN orders o ON c.custkey = o.custkey GROUP BY c.cname"
    ),
)


class TestPatchedQueryEquivalence:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_patched_matches_hashed_ground_truth(self, shop_db, backend):
        truth = SimulatedCluster.partition(shop_db, all_hashed_config(4))
        patched = SimulatedCluster.partition(
            shop_db, patched_shop_config(), backend=backend
        )
        try:
            assert patched.partitioned.table("orders").patch_count > 0
            for sql in EQUIVALENCE_QUERIES:
                assert_same_rows(
                    patched.sql(sql).rows, truth.sql(sql).rows
                )
        finally:
            truth.close()
            patched.close()

    def test_patched_matches_plain_pref(self, shop_db):
        plain = SimulatedCluster.partition(shop_db, plain_shop_config())
        patched = SimulatedCluster.partition(shop_db, patched_shop_config())
        try:
            for sql in EQUIVALENCE_QUERIES:
                assert_same_rows(
                    patched.sql(sql).rows, plain.sql(sql).rows
                )
        finally:
            plain.close()
            patched.close()

    def test_explain_analyze_accounts_patch_rows(self, shop_db):
        cluster = SimulatedCluster.partition(shop_db, patched_shop_config())
        try:
            sql = EQUIVALENCE_QUERIES[2]
            result = cluster.sql(sql, analyze=True)
            text = result.explain_analyze()
            assert "patch_shipped=" in text
            shipped = int(
                result.trace.metrics.counter("engine.rows.patch_shipped")
            )
            assert shipped == cluster.partitioned.table("orders").patch_count
        finally:
            cluster.close()

    def test_incremental_loads_respect_cap(self, shop_db):
        """Inserts into both sides of the patched reference keep the cap
        and the invariants: referencing overflow is patched directly, and
        propagation patches instead of over-duplicating."""
        database = shop_database(seed=7)
        config = patched_shop_config()
        partitioned = partition_database(database, config)
        loader = BulkLoader(partitioned, config)
        # New orders joining existing (scattered) lineitems overflow.
        loader.insert("orders", [(900 + k, k % 20, 1.0 * k) for k in range(8)])
        # New lineitems for existing orders force propagation.
        loader.insert(
            "lineitem",
            [(900 + k, k % 60, k % 15, 1 + k % 9) for k in range(30)],
        )
        check_pref_invariants(partitioned, config)
        orders = partitioned.table("orders")
        assert max(orders.stored_copy_counts().values()) <= 1
        removed = loader.delete("orders", lambda row: row[0] >= 900)
        assert removed == 8
        check_pref_invariants(partitioned, config)
        touched = loader.update(
            "orders",
            lambda row: row[0] % 2 == 0,
            lambda row: (row[0], row[1], row[2] + 1.0),
        )
        assert touched > 0
        check_pref_invariants(partitioned, config)


class TestDetector:
    def test_thresholds_validated(self):
        with pytest.raises(ValueError):
            AdaptiveThresholds(remote_fraction=1.5)
        with pytest.raises(ValueError):
            AdaptiveThresholds(skew=0.5)
        with pytest.raises(ValueError):
            AdaptiveThresholds(min_rows=-1)

    def test_flags_shuffled_join_side_with_partner(self, shop_db):
        cluster = SimulatedCluster.partition(shop_db, all_hashed_config(4))
        try:
            result = cluster.sql(
                "SELECT COUNT(*) AS n FROM orders o "
                "JOIN lineitem l ON o.orderkey = l.orderkey",
                analyze=True,
            )
        finally:
            cluster.close()
        report = detect_hotspots(
            [result.trace],
            AdaptiveThresholds(remote_fraction=0.05, skew=1.1, min_rows=10),
        )
        hotspot = report.hotspot("lineitem")
        assert hotspot is not None
        assert hotspot.shipped_rows > 0
        assert any("remote fraction" in reason for reason in hotspot.reasons)
        assert hotspot.partner_table == "orders"
        assert hotspot.join_columns == ("orderkey",)
        assert hotspot.partner_columns == ("orderkey",)
        assert "lineitem" in report.measurements

    def test_quiet_workload_flags_nothing(self, shop_db):
        cluster = SimulatedCluster.partition(shop_db, all_hashed_config(4))
        try:
            result = cluster.sql(
                "SELECT COUNT(*) AS n FROM orders o", analyze=True
            )
        finally:
            cluster.close()
        report = detect_hotspots([result.trace])
        assert report.hotspots == ()

    def test_min_rows_gates_small_tables(self, shop_db):
        cluster = SimulatedCluster.partition(shop_db, all_hashed_config(4))
        try:
            result = cluster.sql(
                "SELECT COUNT(*) AS n FROM orders o "
                "JOIN lineitem l ON o.orderkey = l.orderkey",
                analyze=True,
            )
        finally:
            cluster.close()
        report = detect_hotspots(
            [result.trace],
            AdaptiveThresholds(
                remote_fraction=0.05, skew=1.1, min_rows=10**6
            ),
        )
        assert report.hotspots == ()


class TestRecommendation:
    def _hotspot(self, table, partner, columns=("orderkey",)):
        return TableHotspot(
            table=table,
            scanned_rows=1000,
            shipped_rows=900,
            remote_fraction=0.9,
            skew=1.0,
            reasons=("remote fraction 0.90 > 0.10",),
            join_columns=columns,
            partner_table=partner,
            partner_columns=columns,
        )

    def test_recommends_patched_pref_for_hot_join(self, shop_db):
        cluster = SimulatedCluster.partition(shop_db, all_hashed_config(4))
        try:
            result = cluster.sql(
                "SELECT COUNT(*) AS n FROM orders o "
                "JOIN lineitem l ON o.orderkey = l.orderkey",
                analyze=True,
            )
            report = detect_hotspots(
                [result.trace],
                AdaptiveThresholds(
                    remote_fraction=0.05, skew=1.1, min_rows=10
                ),
            )
            recommended = recommend_patched_pref(
                cluster.config, shop_db.schema, report, max_copies=2
            )
        finally:
            cluster.close()
        assert recommended is not None
        scheme = recommended.scheme_of("lineitem")
        assert isinstance(scheme, PatchedPrefScheme)
        assert scheme.referenced_table == "orders"
        assert scheme.max_copies == 2
        recommended.validate(shop_db.schema)
        # Every other table keeps its original scheme.
        for table, original in all_hashed_config(4):
            if table != "lineitem":
                assert recommended.scheme_of(table) == original

    def test_no_partner_no_recommendation(self, shop_db):
        report = AdaptiveReport(
            hotspots=(self._hotspot("lineitem", None),)
        )
        assert (
            recommend_patched_pref(
                all_hashed_config(4), shop_db.schema, report
            )
            is None
        )

    def test_referenced_table_is_not_patched(self, shop_db):
        """A table that others PREF-reference must keep full coverage."""
        config = PartitioningConfig(4)
        config.add("customer", HashScheme(("custkey",), 4))
        config.add("orders", HashScheme(("orderkey",), 4))
        config.add(
            "lineitem",
            PrefScheme(
                "orders",
                JoinPredicate.equi(
                    "lineitem", "orderkey", "orders", "orderkey"
                ),
            ),
        )
        report = AdaptiveReport(
            hotspots=(self._hotspot("orders", "customer", ("custkey",)),)
        )
        assert (
            recommend_patched_pref(config, shop_db.schema, report) is None
        )

    def test_replicated_partner_rejected(self, shop_db):
        config = PartitioningConfig(4)
        config.add("orders", HashScheme(("orderkey",), 4))
        config.add("nation", ReplicatedScheme(4))
        report = AdaptiveReport(
            hotspots=(self._hotspot("orders", "nation", ("custkey",)),)
        )
        assert (
            recommend_patched_pref(config, shop_db.schema, report) is None
        )


class TestOnlineRepartition:
    def test_repartition_preserves_answers_and_invariants(self, shop_db):
        sql = (
            "SELECT o.orderkey, SUM(l.qty) AS q FROM orders o "
            "JOIN lineitem l ON o.orderkey = l.orderkey GROUP BY o.orderkey"
        )
        cluster = SimulatedCluster.partition(
            shop_database(seed=7), all_hashed_config(4)
        )
        try:
            cluster.loader.insert("orders", [(950, 3, 12.5)])
            before = cluster.sql(sql).rows
            new_config = patched_shop_config()
            plan = cluster.repartition(new_config)
            assert plan.copies_moved > 0
            assert cluster.config is new_config
            # The rebuilt source database carries the post-partitioning
            # insert; the new layout must serve it.
            assert_same_rows(cluster.sql(sql).rows, before)
            assert (950,) in {
                (row[0],) for row in cluster.database.table("orders").rows
            }
            check_pref_invariants(
                cluster.partitioned, new_config, exact=True
            )
            assert cluster.partitioned.table("orders").patch_count > 0
        finally:
            cluster.close()

    def test_repartition_across_cluster_sizes(self, shop_db):
        cluster = SimulatedCluster.partition(
            shop_database(seed=7), all_hashed_config(4)
        )
        try:
            count_before = cluster.sql(
                "SELECT COUNT(*) AS n FROM orders o"
            ).rows
            plan = cluster.repartition(all_hashed_config(6))
            assert cluster.node_count == 6
            assert len(plan.bytes_moved_by_node) == 6
            assert (
                cluster.sql("SELECT COUNT(*) AS n FROM orders o").rows
                == count_before
            )
        finally:
            cluster.close()
