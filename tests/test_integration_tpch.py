"""Integration: all 22 TPC-H queries, distributed vs reference, per variant."""

import pytest

from helpers import assert_same_rows
from repro.bench import materialize_variant, tpch_variants
from repro.design import QuerySpec
from repro.partitioning import check_pref_invariants
from repro.query import Executor, LocalExecutor
from repro.workloads.tpch import ALL_QUERIES, SMALL_TABLES


@pytest.fixture(scope="module")
def setup(small_tpch):
    specs = [
        QuerySpec.from_plan(name, build(), small_tpch.schema)
        for name, build in ALL_QUERIES.items()
    ]
    variants = tpch_variants(small_tpch, 5, specs, SMALL_TABLES)
    local = LocalExecutor(small_tpch)
    expected = {
        name: local.execute(build()).rows for name, build in ALL_QUERIES.items()
    }
    return small_tpch, variants, expected


@pytest.mark.parametrize(
    "variant_name",
    [
        "Classical",
        "SD (wo small tables)",
        "SD (wo small tables, wo redundancy)",
        "WD (wo small tables)",
    ],
)
def test_all_queries_match_reference(setup, variant_name):
    database, variants, expected = setup
    variant = variants[variant_name]
    partitioned = materialize_variant(database, variant)
    executors = [Executor(dp) for dp in partitioned]
    for name, build in ALL_QUERIES.items():
        executor = executors[variant.config_for(name)]
        actual = executor.execute(build()).rows
        try:
            assert_same_rows(actual, expected[name], places=4)
        except AssertionError as error:
            raise AssertionError(f"{variant_name} / {name}: {error}") from error


def test_designed_configs_hold_invariants(setup):
    database, variants, _expected = setup
    for variant in variants.values():
        for config in variant.configs:
            from repro.partitioning import partition_database

            partitioned = partition_database(database, config)
            check_pref_invariants(partitioned, config, exact=True)


def test_unoptimized_execution_also_correct(setup):
    database, variants, expected = setup
    variant = variants["SD (wo small tables)"]
    partitioned = materialize_variant(database, variant)
    executor = Executor(partitioned[0], optimizations=False)
    for name in ("Q4", "Q13", "Q20", "Q22"):  # semi/anti/outer heavy
        actual = executor.execute(ALL_QUERIES[name]()).rows
        assert_same_rows(actual, expected[name], places=4)
