"""Shared pytest fixtures."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from helpers import (  # noqa: E402
    all_hashed_config,
    pref_chain_config,
    ref_chain_config,
    shop_database,
)
from repro.partitioning import partition_database  # noqa: E402
from repro.workloads.tpch import generate_tpch  # noqa: E402


@pytest.fixture(scope="session")
def shop_db():
    """A deterministic shop database shared across tests (read-only)."""
    return shop_database(seed=7)


@pytest.fixture(scope="session")
def tiny_tpch():
    """A very small TPC-H database (read-only)."""
    return generate_tpch(scale_factor=0.001, seed=3)


@pytest.fixture(scope="session")
def small_tpch():
    """A small TPC-H database for integration tests (read-only)."""
    return generate_tpch(scale_factor=0.002, seed=5)


@pytest.fixture
def shop_pref(shop_db):
    """Shop database partitioned under the PREF chain configuration."""
    config = pref_chain_config(4)
    return partition_database(shop_db, config), config


@pytest.fixture
def shop_ref(shop_db):
    """Shop database partitioned under the REF-like chain configuration."""
    config = ref_chain_config(4)
    return partition_database(shop_db, config), config


@pytest.fixture
def shop_hashed(shop_db):
    """Shop database with every table hash-partitioned on its key."""
    config = all_hashed_config(4)
    return partition_database(shop_db, config), config
