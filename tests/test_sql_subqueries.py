"""SQL subquery predicates: [NOT] EXISTS and [NOT] IN (SELECT ...)."""

import pytest

from helpers import assert_same_rows, pref_chain_config
from repro.errors import SqlError
from repro.partitioning import partition_database
from repro.query import Executor, LocalExecutor
from repro.query.plan import PartnerFilter
from repro.sql import parse_select, sql_to_plan
from repro.sql.ast import ExistsExpression, InSubqueryExpression

QUERIES = [
    "SELECT COUNT(*) AS n FROM customer c WHERE EXISTS "
    "(SELECT * FROM orders o WHERE o.custkey = c.custkey)",
    "SELECT COUNT(*) AS n FROM customer c WHERE NOT EXISTS "
    "(SELECT * FROM orders o WHERE o.custkey = c.custkey)",
    "SELECT COUNT(*) AS n FROM customer c WHERE c.custkey IN "
    "(SELECT o.custkey FROM orders o WHERE o.total > 50)",
    "SELECT c.cname FROM customer c WHERE c.custkey NOT IN "
    "(SELECT o.custkey FROM orders o) ORDER BY c.cname",
    "SELECT COUNT(*) AS n FROM orders o WHERE EXISTS "
    "(SELECT * FROM lineitem l WHERE l.orderkey = o.orderkey AND l.qty > 5)",
    "SELECT i.iname FROM item i WHERE i.itemkey IN "
    "(SELECT l.itemkey FROM lineitem l, orders o "
    "WHERE l.orderkey = o.orderkey AND o.total > 80) ORDER BY i.iname",
]


class TestParsing:
    def test_exists_parsed(self):
        statement = parse_select(QUERIES[0])
        assert isinstance(statement.where, ExistsExpression)
        assert not statement.where.negated

    def test_not_exists_parsed(self):
        statement = parse_select(QUERIES[1])
        assert isinstance(statement.where, ExistsExpression)
        assert statement.where.negated

    def test_in_subquery_parsed(self):
        statement = parse_select(QUERIES[2])
        assert isinstance(statement.where, InSubqueryExpression)


class TestPlanning:
    def test_uncorrelated_exists_rejected(self, shop_db):
        with pytest.raises(SqlError):
            sql_to_plan(
                "SELECT * FROM customer c WHERE EXISTS "
                "(SELECT * FROM orders o WHERE o.total > 5)",
                shop_db.schema,
            )

    def test_in_subquery_needs_single_column(self, shop_db):
        with pytest.raises(SqlError):
            sql_to_plan(
                "SELECT * FROM customer c WHERE c.custkey IN "
                "(SELECT o.custkey, o.total FROM orders o)",
                shop_db.schema,
            )

    def test_not_exists_uses_partner_filter(self, shop_db):
        partitioned = partition_database(shop_db, pref_chain_config(4))
        executor = Executor(partitioned)
        plan = sql_to_plan(QUERIES[1], shop_db.schema)
        annotated = executor.rewriter.rewrite(plan)
        labels = [type(a.node).__name__ for a in _walk(annotated)]
        assert "PartnerFilter" in labels


@pytest.mark.parametrize("query", QUERIES)
def test_subqueries_end_to_end(shop_db, query):
    plan = sql_to_plan(query, shop_db.schema)
    partitioned = partition_database(shop_db, pref_chain_config(4))
    expected = LocalExecutor(shop_db).execute(plan).rows
    actual = Executor(partitioned).execute(plan).rows
    assert_same_rows(actual, expected)


def _walk(annotated):
    yield annotated
    for child in annotated.inputs:
        yield from _walk(child)
