"""Tests for the packed bitmap."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.storage import Bitmap


class TestBitmap:
    def test_append_and_read(self):
        bitmap = Bitmap()
        bitmap.append(True)
        bitmap.append(False)
        bitmap.append(True)
        assert list(bitmap) == [True, False, True]
        assert len(bitmap) == 3

    def test_zeros(self):
        bitmap = Bitmap.zeros(20)
        assert len(bitmap) == 20
        assert bitmap.count() == 0

    def test_setitem(self):
        bitmap = Bitmap.zeros(10)
        bitmap[3] = True
        bitmap[9] = True
        assert bitmap[3] and bitmap[9]
        assert bitmap.count() == 2
        bitmap[3] = False
        assert not bitmap[3]
        assert bitmap.count() == 1

    def test_negative_index(self):
        bitmap = Bitmap([True, False, True])
        assert bitmap[-1] is True
        assert bitmap[-2] is False

    def test_out_of_range(self):
        bitmap = Bitmap([True])
        with pytest.raises(IndexError):
            bitmap[1]
        with pytest.raises(IndexError):
            bitmap[-2] = True

    def test_extend_and_equality(self):
        first = Bitmap()
        first.extend([True, True, False])
        second = Bitmap([True, True, False])
        assert first == second
        assert first != Bitmap([True, True, True])

    def test_crosses_byte_boundaries(self):
        pattern = [i % 3 == 0 for i in range(100)]
        bitmap = Bitmap(pattern)
        assert list(bitmap) == pattern
        assert bitmap.count() == sum(pattern)

    @given(st.lists(st.booleans(), max_size=300))
    def test_roundtrip(self, bits):
        bitmap = Bitmap(bits)
        assert list(bitmap) == bits
        assert len(bitmap) == len(bits)
        assert bitmap.count() == sum(bits)
