"""Tests for the TPC-H and TPC-DS workload packages."""

import pytest

from repro.design import QuerySpec
from repro.query import LocalExecutor
from repro.workloads import tpch, tpcds


class TestTpchSchema:
    def test_eight_tables(self):
        schema = tpch.tpch_schema()
        assert len(schema.table_names) == 8
        assert len(schema.foreign_keys) == 8

    def test_composite_fk_lineitem_partsupp(self):
        schema = tpch.tpch_schema()
        fk = next(f for f in schema.foreign_keys if f.name == "fk_lineitem_partsupp")
        assert fk.source_columns == ("l_partkey", "l_suppkey")

    def test_scaled_rows(self):
        rows = tpch.scaled_rows(0.01)
        assert rows["region"] == 5
        assert rows["nation"] == 25
        assert rows["customer"] == 1500
        assert rows["lineitem"] == 60_000


class TestTpchDatagen:
    def test_deterministic(self):
        first = tpch.generate_tpch(0.001, seed=42)
        second = tpch.generate_tpch(0.001, seed=42)
        assert first.table("orders").rows == second.table("orders").rows

    def test_referential_integrity(self, tiny_tpch):
        customers = set(tiny_tpch.table("customer").column_values("c_custkey"))
        for custkey in tiny_tpch.table("orders").column_values("o_custkey"):
            assert custkey in customers
        orders = set(tiny_tpch.table("orders").column_values("o_orderkey"))
        partsupp = set(
            tiny_tpch.table("partsupp").key_values(["ps_partkey", "ps_suppkey"])
        )
        lineitem = tiny_tpch.table("lineitem")
        for row in lineitem.rows:
            assert row[0] in orders
            assert (row[2], row[3]) in partsupp

    def test_one_third_of_customers_have_no_orders(self, tiny_tpch):
        customers = set(tiny_tpch.table("customer").column_values("c_custkey"))
        ordering = set(tiny_tpch.table("orders").column_values("o_custkey"))
        assert all(key % 3 != 0 for key in ordering)
        assert len(customers - ordering) >= len(customers) // 4

    def test_partsupp_unique_keys(self, tiny_tpch):
        keys = tiny_tpch.table("partsupp").key_values(["ps_partkey", "ps_suppkey"])
        assert len(keys) == len(set(keys))


class TestTpchQueries:
    def test_all_22_defined(self):
        assert len(tpch.ALL_QUERIES) == 22
        assert set(tpch.RUNTIME_EXCLUDED) == {"Q13", "Q22"}
        assert len(tpch.runtime_queries()) == 20

    @pytest.mark.parametrize("name", sorted(tpch.ALL_QUERIES))
    def test_query_executes_locally(self, tiny_tpch, name):
        plan = tpch.ALL_QUERIES[name]()
        result = LocalExecutor(tiny_tpch).execute(plan)
        assert result.columns  # produced a schema and ran to completion

    def test_specs_extractable(self, tiny_tpch):
        for name, build in tpch.ALL_QUERIES.items():
            spec = QuerySpec.from_plan(name, build(), tiny_tpch.schema)
            assert spec.tables


class TestTpcdsSchema:
    def test_twenty_four_tables(self):
        schema = tpcds.tpcds_schema()
        assert len(schema.table_names) == 24
        assert len(tpcds.FACT_TABLES) == 7

    def test_returns_reference_sales_composite(self):
        schema = tpcds.tpcds_schema()
        fk = next(f for f in schema.foreign_keys if f.name == "fk_sr_ss")
        assert fk.source_columns == ("sr_ticket_number", "sr_item_sk")
        assert fk.target_table == "store_sales"

    def test_inventory_is_biggest(self):
        assert max(tpcds.BASE_ROWS, key=tpcds.BASE_ROWS.get) == "inventory"


class TestTpcdsDatagen:
    @pytest.fixture(scope="class")
    def db(self):
        return tpcds.generate_tpcds(scale_factor=0.001, seed=2)

    def test_deterministic(self):
        first = tpcds.generate_tpcds(0.0005, seed=9)
        second = tpcds.generate_tpcds(0.0005, seed=9)
        assert (
            first.table("store_sales").rows == second.table("store_sales").rows
        )

    def test_skewed_item_references(self, db):
        hist = db.table("store_sales").histogram(["ss_item_sk"])
        counts = sorted(hist.frequencies.values(), reverse=True)
        # Zipf skew: the hottest item is referenced far more than median.
        assert counts[0] > 3 * counts[len(counts) // 2]

    def test_returns_reference_existing_sales(self, db):
        sales = set(
            db.table("store_sales").key_values(["ss_ticket_number", "ss_item_sk"])
        )
        for row in db.table("store_returns").rows:
            assert (row[6], row[1]) in sales

    def test_primary_keys_unique(self, db):
        for table, key in [
            ("store_sales", ["ss_ticket_number", "ss_item_sk"]),
            ("inventory", ["inv_date_sk", "inv_item_sk", "inv_warehouse_sk"]),
            ("web_sales", ["ws_order_number", "ws_item_sk"]),
        ]:
            keys = db.table(table).key_values(key)
            assert len(keys) == len(set(keys))


class TestTpcdsWorkload:
    def test_99_queries_expand_to_spja_blocks(self):
        assert len(tpcds.QUERY_BLOCKS) == 99
        workload = tpcds.tpcds_workload()
        # Multi-channel queries contribute one spec per SPJA block.
        assert len(workload) > 99
        names = {spec.name.split("_")[0] for spec in workload}
        assert names == {f"q{i}" for i in range(1, 100)}
        with_edges = [spec for spec in workload if spec.predicates]
        assert len(with_edges) >= 140

    def test_edges_reference_real_columns(self):
        schema = tpcds.tpcds_schema()
        for shorthand, predicate in tpcds.EDGES.items():
            for table in predicate.tables:
                table_schema = schema.table(table)
                for column in predicate.columns_of(table):
                    assert table_schema.has_column(column), (shorthand, column)

    def test_every_query_edge_known(self):
        for number, shorthands in tpcds.QUERY_EDGES.items():
            for shorthand in shorthands:
                assert shorthand in tpcds.EDGES, (number, shorthand)
