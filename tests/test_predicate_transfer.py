"""Predicate transfer: observation equivalence, savings, and boundaries.

The knob must never change answers — only how many rows cross the wire.
These tests pin that equivalence against the single-node LocalExecutor
ground truth and across engine backends (equal canonical traces), then
check the savings actually materialise on a non-co-partitioned layout,
and that bad Bloom parameters are rejected at the construction boundary.
"""

from __future__ import annotations

import pytest

from helpers import assert_same_rows
from repro.cluster import SimulatedCluster
from repro.engine.backends import make_backend
from repro.query import Executor, LocalExecutor, Query
from repro.query.expressions import col, lit


def _plans():
    """Query shapes covering every join kind the scheduler touches."""
    c = Query.scan("customer", alias="c")
    o = Query.scan("orders", alias="o")
    l = Query.scan("lineitem", alias="l")  # noqa: E741
    count = [("count", None, "cnt")]
    yield "chain inner", (
        c.where(col("c.custkey") < lit(5))
        .join(o, on=[("c.custkey", "o.custkey")])
        .join(l, on=[("o.orderkey", "l.orderkey")])
        .aggregate(group_by=["c.cname"], aggregates=[("sum", col("l.qty"), "q")])
        .plan()
    )
    yield "semi", (
        c.semi_join(
            o.where(col("o.total") > lit(60.0)), on=[("c.custkey", "o.custkey")]
        )
        .aggregate(aggregates=count)
        .plan()
    )
    yield "anti", (
        c.anti_join(o, on=[("c.custkey", "o.custkey")])
        .aggregate(aggregates=count)
        .plan()
    )
    yield "left outer", (
        c.left_join(
            o.where(col("o.total") > lit(50.0)), on=[("c.custkey", "o.custkey")]
        )
        .aggregate(group_by=["c.cname"], aggregates=count)
        .plan()
    )
    yield "ordered", (
        c.join(o, on=[("c.custkey", "o.custkey")])
        .aggregate(group_by=["c.cname"], aggregates=[("sum", col("o.total"), "t")])
        .order_by([("t", "desc"), ("c.cname", "asc")], limit=5)
        .plan()
    )


class TestObservationEquivalence:
    @pytest.mark.parametrize("fixture", ["shop_hashed", "shop_pref", "shop_ref"])
    def test_knob_preserves_answers(self, fixture, shop_db, request):
        partitioned, _config = request.getfixturevalue(fixture)
        for name, plan in _plans():
            truth = LocalExecutor(shop_db).execute(plan).rows
            off = Executor(partitioned).execute(plan).rows
            on = Executor(partitioned, predicate_transfer=True).execute(plan).rows
            if name == "ordered":  # order-sensitive output
                assert off == on == truth, name
            else:
                assert_same_rows(off, truth)
                assert_same_rows(on, truth)

    def test_canonical_traces_equal_across_backends(self, shop_hashed):
        partitioned, _config = shop_hashed
        _name, plan = next(_plans())
        canonicals = {}
        for spec in ("serial", "thread", "process"):
            backend = make_backend(spec)
            try:
                executor = Executor(
                    partitioned, predicate_transfer=True, backend=backend
                )
                result = executor.execute(plan, analyze=True)
            finally:
                backend.close()
            canonicals[spec] = result.trace.canonical()
        assert canonicals["serial"] == canonicals["thread"]
        assert canonicals["serial"] == canonicals["process"]

    def test_knob_off_leaves_trace_bloom_free(self, shop_hashed):
        partitioned, _config = shop_hashed
        _name, plan = next(_plans())
        result = Executor(partitioned).execute(plan, analyze=True)
        for span in result.trace.spans():
            assert span.name != "bloom_probe"
            assert span.bloom_filters == 0
            assert span.bloom_probed == 0


class TestSavings:
    def test_bytes_shuffled_drop_on_hashed_layout(self, shop_hashed):
        partitioned, _config = shop_hashed
        plan = dict(_plans())["chain inner"]
        off = Executor(partitioned).execute(plan)
        on = Executor(partitioned, predicate_transfer=True).execute(plan)
        assert_same_rows(on.rows, off.rows)
        assert on.stats.network_bytes < off.stats.network_bytes
        assert on.stats.rows_shipped < off.stats.rows_shipped

    def test_pruning_shows_in_trace_and_explain(self, shop_hashed):
        partitioned, _config = shop_hashed
        plan = dict(_plans())["chain inner"]
        executor = Executor(partitioned, predicate_transfer=True)
        assert "bloom" in executor.explain(plan).lower()
        result = executor.execute(plan, analyze=True)
        probes = [s for s in result.trace.spans() if s.name == "bloom_probe"]
        assert probes, "no BloomProbe span on a prunable hashed join"
        assert any(s.bloom_pruned > 0 for s in probes)
        assert all(s.bloom_filters > 0 for s in probes)
        assert all(s.bloom_probed >= s.bloom_pruned for s in probes)
        assert "bloom_pruned=" in result.explain_analyze()

    def test_trace_json_schema_still_validates(self, shop_hashed):
        from repro.obs.explain import trace_to_json, validate_trace

        partitioned, _config = shop_hashed
        plan = dict(_plans())["chain inner"]
        result = Executor(partitioned, predicate_transfer=True).execute(
            plan, analyze=True
        )
        assert validate_trace(trace_to_json(result.trace)) == []


class TestParameterBoundary:
    @pytest.mark.parametrize("fpr", [0.0, 1.0, -0.1, 2.0, float("nan"), float("inf")])
    def test_executor_rejects_bad_fpr(self, shop_hashed, fpr):
        partitioned, _config = shop_hashed
        with pytest.raises(ValueError, match="bloom_fpr"):
            Executor(partitioned, predicate_transfer=True, bloom_fpr=fpr)

    def test_cluster_rejects_bad_fpr(self, shop_db, shop_hashed):
        partitioned, config = shop_hashed
        with pytest.raises(ValueError, match="bloom_fpr"):
            SimulatedCluster(
                shop_db, partitioned, config, backend="serial", bloom_fpr=0.0
            )

    def test_cli_rejects_bad_fpr(self):
        from repro.__main__ import explain_main

        with pytest.raises(ValueError, match="bloom_fpr"):
            explain_main(
                [
                    "--query", "Q6", "--scale", "0.001",
                    "--predicate-transfer", "--bloom-fpr", "0",
                ]
            )
