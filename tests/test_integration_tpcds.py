"""Integration: TPC-DS design pipeline (SD, WD, stars) on skewed data."""

import pytest

from repro.bench import measure_variant, tpcds_variants
from repro.design import SchemaGraph
from repro.partitioning import check_pref_invariants, partition_database
from repro.workloads.tpcds import (
    FACT_TABLES,
    SMALL_TABLES,
    generate_tpcds,
    tpcds_workload,
)


@pytest.fixture(scope="module")
def setup():
    database = generate_tpcds(scale_factor=0.0005, seed=4)
    variants = tpcds_variants(
        database, 10, tpcds_workload(), SMALL_TABLES, FACT_TABLES
    )
    return database, variants


def test_all_variants_built(setup):
    _db, variants = setup
    assert set(variants) == {
        "All Hashed",
        "All Replicated",
        "CP Naive",
        "CP Ind. Stars",
        "SD Naive",
        "SD Ind. Stars",
        "WD",
    }


def test_figure11b_shape(setup):
    database, variants = setup
    graph = SchemaGraph.from_schema(database.schema, database.table_sizes())
    measured = {
        name: measure_variant(database, variant, graph)
        for name, variant in variants.items()
    }
    # Baselines bracket everything.  All-Hashed is near zero; the returns
    # tables share their sales table's key structure, so hashing on
    # primary keys accidentally co-partitions those few edges (the paper
    # notes DL=0 holds only "as long as the tables do not share the same
    # primary key attributes").
    assert measured["All Hashed"].data_locality < 0.35
    assert measured["All Hashed"].data_redundancy == pytest.approx(0.0)
    assert measured["All Replicated"].data_locality == pytest.approx(1.0)
    assert measured["All Replicated"].data_redundancy == pytest.approx(9.0)
    # CP Naive replicates much more than CP Individual Stars.
    assert (
        measured["CP Naive"].data_redundancy
        > measured["CP Ind. Stars"].data_redundancy
    )
    # SD has the lowest redundancy among the non-trivial designs, at the
    # price of the lowest data-locality (paper Figure 11b).
    assert (
        measured["SD Naive"].data_redundancy
        < measured["CP Ind. Stars"].data_redundancy
    )
    assert (
        measured["SD Naive"].data_locality
        <= measured["SD Ind. Stars"].data_locality
    )
    # WD reaches (near-)full per-query locality.
    assert measured["WD"].data_locality > 0.85
    # CP designs achieve full locality through replication.
    assert measured["CP Naive"].data_locality == pytest.approx(1.0)


def test_wd_fragments_valid_and_invariant(setup):
    database, variants = setup
    for config in variants["WD"].configs:
        partitioned = partition_database(database, config)
        check_pref_invariants(partitioned, config, exact=True)


def test_wd_merge_statistics(setup):
    database, _variants = setup
    from repro.design import WorkloadDrivenDesigner

    result = WorkloadDrivenDesigner(database, 10).design(
        tpcds_workload(), replicate=SMALL_TABLES
    )
    # The paper reports 165 -> 17 -> 7; our query graphs give the same
    # strongly decreasing shape.
    assert result.components_initial > 60
    assert result.components_after_containment < result.components_initial / 2
    assert len(result.fragments) <= result.components_after_containment
