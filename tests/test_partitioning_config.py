"""Tests for partitioning configurations."""

import pytest

from helpers import pref_chain_config, shop_schema
from repro.errors import InvalidConfigurationError
from repro.partitioning import (
    HashScheme,
    JoinPredicate,
    PartitioningConfig,
    PrefScheme,
    ReplicatedScheme,
)


class TestPartitioningConfig:
    def test_seed_and_pref_tables(self):
        config = pref_chain_config(4)
        assert config.seed_tables() == ("lineitem",)
        assert set(config.pref_tables()) == {"orders", "customer", "item"}

    def test_chain_to_seed(self):
        config = pref_chain_config(4)
        chain = config.chain_to_seed("customer")
        assert [referenced for referenced, _ in chain] == ["orders", "lineitem"]
        assert config.seed_of("customer") == "lineitem"
        assert config.seed_of("lineitem") == "lineitem"

    def test_load_order_references_first(self):
        config = pref_chain_config(4)
        order = config.load_order()
        assert order.index("lineitem") < order.index("orders")
        assert order.index("orders") < order.index("customer")

    def test_cycle_detected(self):
        config = PartitioningConfig(2)
        config.add(
            "a", PrefScheme("b", JoinPredicate.equi("a", "x", "b", "y"))
        )
        config.add(
            "b", PrefScheme("a", JoinPredicate.equi("b", "y", "a", "x"))
        )
        with pytest.raises(InvalidConfigurationError):
            config.load_order()

    def test_self_reference_rejected(self):
        config = PartitioningConfig(2)
        with pytest.raises(InvalidConfigurationError):
            config.add(
                "a", PrefScheme("a", JoinPredicate.equi("a", "x", "b", "y"))
            )

    def test_duplicate_assignment_rejected(self):
        config = PartitioningConfig(2)
        config.add("a", HashScheme(("x",), 2))
        with pytest.raises(InvalidConfigurationError):
            config.add("a", HashScheme(("x",), 2))

    def test_partition_count_mismatch_rejected(self):
        config = PartitioningConfig(2)
        with pytest.raises(InvalidConfigurationError):
            config.add("a", HashScheme(("x",), 3))

    def test_validate_against_schema(self):
        schema = shop_schema()
        config = pref_chain_config(4)
        config.validate(schema)  # should not raise

    def test_validate_rejects_unknown_column(self):
        schema = shop_schema()
        config = PartitioningConfig(4)
        config.add("customer", HashScheme(("zzz",), 4))
        with pytest.raises(InvalidConfigurationError):
            config.validate(schema)

    def test_validate_rejects_pref_on_replicated(self):
        schema = shop_schema()
        config = PartitioningConfig(4)
        config.add("nation", ReplicatedScheme(4))
        config.add(
            "customer",
            PrefScheme(
                "nation",
                JoinPredicate.equi("customer", "nationkey", "nation", "nationkey"),
            ),
        )
        with pytest.raises(InvalidConfigurationError):
            config.validate(schema)

    def test_validate_rejects_dangling_reference(self):
        schema = shop_schema()
        config = PartitioningConfig(4)
        config.add(
            "orders",
            PrefScheme(
                "customer",
                JoinPredicate.equi("orders", "custkey", "customer", "custkey"),
            ),
        )
        with pytest.raises(InvalidConfigurationError):
            config.validate(schema)

    def test_validate_rejects_wrong_predicate_tables(self):
        schema = shop_schema()
        config = PartitioningConfig(4)
        config.add("customer", HashScheme(("custkey",), 4))
        with pytest.raises(InvalidConfigurationError):
            config.add(
                "orders",
                PrefScheme(
                    "customer",
                    JoinPredicate.equi("lineitem", "orderkey", "customer", "custkey"),
                ),
            )
            config.validate(schema)

    def test_describe_is_deterministic(self):
        config = pref_chain_config(4)
        assert config.describe() == pref_chain_config(4).describe()
        assert "PREF on lineitem" in config.describe()
