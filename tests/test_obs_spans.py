"""Span-tree invariants and cross-backend trace equality.

The observability contract has two halves:

* structural — a :class:`~repro.obs.span.QueryTrace` mirrors the compiled
  physical plan exactly (post-order op_ids, children nested, one span per
  operator) and its counters reconcile with the query result; and
* behavioural — the canonical (timing-free) trace is a pure function of
  the compiled plan, so serial, thread and process backends must produce
  equal canonical traces and equal merged metric totals, and merging
  worker :class:`~repro.engine.context.ContextDelta` objects must be
  order-independent (task completion order is nondeterministic).
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from helpers import pref_chain_config, shop_database
from repro.engine import (
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
)
from repro.engine.context import ContextDelta, ExecutionContext, TraceEvent
from repro.obs.metrics import TIME_BUCKETS, MetricsRegistry
from repro.partitioning import partition_database
from repro.query import Executor
from repro.sql import sql_to_plan

QUERIES = [
    "SELECT c.cname, o.total FROM customer c "
    "JOIN orders o ON c.custkey = o.custkey",
    "SELECT o.orderkey, SUM(l.qty) AS q FROM orders o "
    "JOIN lineitem l ON o.orderkey = l.orderkey GROUP BY o.orderkey",
    "SELECT DISTINCT l.itemkey FROM lineitem l",
    "SELECT n.nname, COUNT(*) AS c FROM customer c "
    "JOIN nation n ON c.nationkey = n.nationkey "
    "GROUP BY n.nname ORDER BY c DESC",
]


@pytest.fixture(scope="module")
def traced_engines():
    database = shop_database(seed=7)
    partitioned = partition_database(database, pref_chain_config(4))
    thread_pool = ThreadPoolBackend(max_workers=4)
    process_pool = ProcessPoolBackend(max_workers=2)
    engines = {
        "serial": Executor(partitioned, backend=SerialBackend()),
        "thread": Executor(partitioned, backend=thread_pool),
        "process": Executor(partitioned, backend=process_pool),
    }
    yield database, engines
    thread_pool.close()


@pytest.mark.parametrize("sql", QUERIES)
def test_span_tree_mirrors_plan(traced_engines, sql):
    database, engines = traced_engines
    result = engines["serial"].execute(
        sql_to_plan(sql, database.schema), analyze=True
    )
    trace = result.trace
    assert trace is not None
    spans = trace.spans()
    # One span per physical operator, walked in plan post-order: the
    # compiler assigns op_ids in post-order, so the walk enumerates them.
    assert [span.op_id for span in spans] == list(range(len(spans)))
    assert len(spans) == len(result.operators)
    for span in spans:
        for child in span.children:
            assert child.op_id < span.op_id
        # Per-partition output map must reconcile with the span total.
        assert sum(span.rows_out_by_partition.values()) == span.rows_out
        # Task lists are canonically sorted (phase, then partition).
        keys = [task.canonical() for task in span.tasks]
        assert keys == sorted(keys)
        assert trace.span(span.op_id) is span
    # The root is the implicit gather and its output is the result.
    assert spans[-1].name == "gather"
    assert spans[-1].rows_out == len(result.rows)
    # The merged registry agrees with the per-span accounting.
    assert trace.metrics.counter("engine.rows.out") == sum(
        span.rows_out for span in spans
    )
    assert trace.metrics.counter("engine.rows.shipped") == sum(
        span.rows_shipped for span in spans
    )


@pytest.mark.parametrize("sql", QUERIES)
def test_backend_traces_identical(traced_engines, sql):
    database, engines = traced_engines
    results = {
        name: engine.execute(sql_to_plan(sql, database.schema), analyze=True)
        for name, engine in engines.items()
    }
    reference = results["serial"].trace
    for name in ("thread", "process"):
        trace = results[name].trace
        assert trace.canonical() == reference.canonical(), (
            f"{name} trace diverges from serial for {sql!r}"
        )
        # Merged metric totals match exactly (timings are excluded by
        # canonicalisation but counters must be bit-identical).
        assert trace.metrics.canonical() == reference.metrics.canonical()
    # Backends label their traces so exports are attributable.
    assert results["thread"].trace.backend == "thread_pool"
    assert results["process"].trace.backend == "process_pool"


def test_trace_not_collected_without_analyze(traced_engines):
    database, engines = traced_engines
    result = engines["serial"].execute(sql_to_plan(QUERIES[0], database.schema))
    assert result.trace is None
    with pytest.raises(ValueError):
        result.explain_analyze()


# -- delta-merge order independence (task completion is nondeterministic) --


class _Op:
    """Minimal stand-in for a PhysicalOperator in context unit tests."""

    def __init__(self, op_id: int, label: str) -> None:
        self.op_id = op_id
        self.label = label


def _recorded_deltas(ops, node_count: int) -> list[ContextDelta]:
    """A deterministic batch of worker deltas with every record kind."""
    rng = random.Random(42)
    deltas = []
    for worker in range(6):
        delta = ContextDelta(node_count, collect_trace=True)
        for op in ops:
            node = rng.randrange(node_count)
            delta.add_work(op, node, float(rng.randrange(1, 50)))
            delta.add_network(op, rng.randrange(1, 4096), rng.randrange(1, 40))
            if rng.random() < 0.5:
                delta.add_shuffle(op)
            delta.add_partition_scanned(op)
            delta.add_output(op, rng.randrange(0, 30), partition=node)
            delta.add_dup_eliminated(op, rng.randrange(0, 5))
            delta.add_join_event(op, node, rng.randrange(50), rng.randrange(50))
            delta.metrics.observe(
                "time.task_seconds", rng.random() / 100, TIME_BUCKETS
            )
            delta.record_trace(
                TraceEvent(op.op_id, op.label, "partition", node, 0.0, None)
            )
        deltas.append(delta)
    return deltas


def _merged_context(ops, deltas, order, node_count: int):
    events = []
    ctx = ExecutionContext(node_count, trace=events.append)
    for op in ops:
        ctx.register(op)
    for index in order:
        ctx.merge_delta(deltas[index])
    ctx.finish()
    return ctx, events


def test_delta_merge_is_order_independent():
    node_count = 4
    ops = [_Op(i, f"op{i}") for i in range(3)]
    deltas = _recorded_deltas(ops, node_count)
    baseline_order = list(range(len(deltas)))
    baseline, baseline_events = _merged_context(
        ops, deltas, baseline_order, node_count
    )
    rng = random.Random(7)
    for _ in range(5):
        order = baseline_order[:]
        rng.shuffle(order)
        ctx, events = _merged_context(ops, deltas, order, node_count)
        # The cost-model stats canonicalise identically (join events are
        # flushed through the deferred sort, so ordering cannot leak).
        assert ctx.stats.canonical() == baseline.stats.canonical()
        # Per-operator breakdowns match field by field.
        for got, want in zip(ctx.operator_stats(), baseline.operator_stats()):
            assert got.op_id == want.op_id
            assert got.node_work == want.node_work
            assert got.network_bytes == want.network_bytes
            assert got.rows_shipped == want.rows_shipped
            assert got.shuffles == want.shuffles
            assert got.partitions_scanned == want.partitions_scanned
            assert got.rows_out == want.rows_out
            assert got.rows_out_by_partition == want.rows_out_by_partition
            assert got.dup_eliminated == want.dup_eliminated
        # Metric registries (histograms included) merge commutatively.
        assert ctx.metrics.canonical() == baseline.metrics.canonical()
        # Every worker trace event is forwarded exactly once.
        assert Counter(events) == Counter(baseline_events)


def test_histogram_merge_commutes():
    a = MetricsRegistry(locked=False)
    b = MetricsRegistry(locked=False)
    for value in (0.5, 3.0, 900.0):
        a.observe("engine.partition_rows", value, (1.0, 10.0, float("inf")))
    for value in (0.1, 42.0):
        b.observe("engine.partition_rows", value, (1.0, 10.0, float("inf")))
    ab = MetricsRegistry(locked=False)
    ab.merge(a)
    ab.merge(b)
    ba = MetricsRegistry(locked=False)
    ba.merge(b)
    ba.merge(a)
    assert ab.canonical() == ba.canonical()
