"""Distributed executor correctness: every result cross-checked locally."""

import pytest

from helpers import (
    all_hashed_config,
    assert_same_rows,
    pref_chain_config,
    ref_chain_config,
)
from repro.partitioning import partition_database
from repro.query import Executor, LocalExecutor, Query
from repro.query.expressions import col, lit

CONFIGS = {
    "pref": pref_chain_config,
    "ref": ref_chain_config,
    "hashed": all_hashed_config,
}


def plans():
    l = Query.scan("lineitem", alias="l")
    o = Query.scan("orders", alias="o")
    c = Query.scan("customer", alias="c")
    i = Query.scan("item", alias="i")
    n = Query.scan("nation", alias="n")
    yield "scan_count", o.aggregate(aggregates=[("count", None, "cnt")]).plan()
    yield "filter", o.where(col("o.total") > lit(50.0)).aggregate(
        aggregates=[("count", None, "cnt"), ("sum", col("o.total"), "s")]
    ).plan()
    yield "join_lo", l.join(o, on=[("l.orderkey", "o.orderkey")]).aggregate(
        aggregates=[("count", None, "cnt"), ("sum", col("l.qty"), "q")]
    ).plan()
    yield "join_chain", c.join(o, on=[("c.custkey", "o.custkey")]).join(
        l, on=[("o.orderkey", "l.orderkey")]
    ).aggregate(
        group_by=["c.cname"], aggregates=[("sum", col("l.qty"), "q")]
    ).order_by(["c.cname"]).plan()
    yield "join_item", l.join(i, on=[("l.itemkey", "i.itemkey")]).aggregate(
        group_by=["i.iname"], aggregates=[("count", None, "cnt")]
    ).order_by(["i.iname"]).plan()
    yield "join_replicated", c.join(
        n, on=[("c.nationkey", "n.nationkey")]
    ).aggregate(
        group_by=["n.nname"], aggregates=[("count", None, "cnt")]
    ).order_by(["n.nname"]).plan()
    yield "semi", c.semi_join(o, on=[("c.custkey", "o.custkey")]).aggregate(
        aggregates=[("count", None, "cnt")]
    ).plan()
    yield "anti", c.anti_join(o, on=[("c.custkey", "o.custkey")]).aggregate(
        aggregates=[("count", None, "cnt")]
    ).plan()
    yield "semi_filtered", c.semi_join(
        o.where(col("o.total") > lit(40.0)), on=[("c.custkey", "o.custkey")]
    ).aggregate(aggregates=[("count", None, "cnt")]).plan()
    yield "outer", c.left_join(o, on=[("c.custkey", "o.custkey")]).aggregate(
        group_by=["c.cname"], aggregates=[("count", col("o.orderkey"), "norders")]
    ).order_by(["c.cname"]).plan()
    yield "outer_filtered", c.left_join(
        o.where(col("o.total") > lit(40.0)), on=[("c.custkey", "o.custkey")]
    ).aggregate(
        group_by=["c.cname"], aggregates=[("count", col("o.orderkey"), "n")]
    ).order_by(["c.cname"]).plan()
    yield "theta", i.cross_join(
        n, residual=(col("i.itemkey") < col("n.nationkey"))
    ).aggregate(aggregates=[("count", None, "cnt")]).plan()
    yield "distinct_values", o.select(["o.custkey"], distinct=True).order_by(
        ["custkey"]
    ).plan()
    yield "scalar_over_join", l.join(o, on=[("l.orderkey", "o.orderkey")]).join(
        c, on=[("o.custkey", "c.custkey")]
    ).aggregate(
        aggregates=[
            ("avg", col("l.qty"), "aq"),
            ("min", col("o.total"), "mn"),
            ("max", col("o.total"), "mx"),
            ("count_distinct", col("c.custkey"), "cd"),
        ]
    ).plan()
    yield "limit", o.order_by([("o.total", False)], limit=5).select(
        ["o.orderkey", "o.total"]
    ).plan() if False else (
        o.select(["o.orderkey", "o.total"]).order_by([("total", False)], limit=5).plan()
    )


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("optimizations", [True, False])
def test_distributed_matches_local(shop_db, config_name, optimizations):
    config = CONFIGS[config_name](5)
    partitioned = partition_database(shop_db, config)
    executor = Executor(partitioned, optimizations=optimizations)
    local = LocalExecutor(shop_db)
    for name, plan in plans():
        expected = local.execute(plan).rows
        actual = executor.execute(plan).rows
        try:
            assert_same_rows(actual, expected)
        except AssertionError as error:
            raise AssertionError(f"plan {name!r}: {error}") from error


def test_result_columns_hide_bitmaps(shop_db):
    partitioned = partition_database(shop_db, pref_chain_config(4))
    executor = Executor(partitioned)
    result = executor.execute(Query.scan("orders", alias="o").plan())
    assert result.columns == ("o.orderkey", "o.custkey", "o.total")
    assert all(len(row) == 3 for row in result.rows)


def test_scan_of_pref_table_dedups_final_result(shop_db):
    partitioned = partition_database(shop_db, pref_chain_config(4))
    executor = Executor(partitioned)
    result = executor.execute(Query.scan("customer", alias="c").plan())
    assert len(result.rows) == shop_db.table("customer").row_count


def test_ordered_result_respects_limit(shop_db):
    partitioned = partition_database(shop_db, pref_chain_config(4))
    executor = Executor(partitioned)
    plan = (
        Query.scan("orders", alias="o")
        .select(["o.orderkey", "o.total"])
        .order_by([("total", False)], limit=3)
        .plan()
    )
    result = executor.execute(plan)
    assert len(result.rows) == 3
    totals = [row[1] for row in result.rows]
    assert totals == sorted(totals, reverse=True)


def test_as_dicts(shop_db):
    partitioned = partition_database(shop_db, pref_chain_config(4))
    executor = Executor(partitioned)
    plan = (
        Query.scan("orders", alias="o")
        .aggregate(aggregates=[("count", None, "cnt")])
        .plan()
    )
    result = executor.execute(plan)
    assert result.as_dicts() == [{"cnt": shop_db.table("orders").row_count}]


def test_stats_track_network_and_shuffles(shop_db):
    partitioned = partition_database(shop_db, all_hashed_config(4))
    executor = Executor(partitioned)
    plan = (
        Query.scan("customer", alias="c")
        .join(Query.scan("orders", alias="o"), on=[("c.custkey", "o.custkey")])
        .aggregate(aggregates=[("count", None, "cnt")])
        .plan()
    )
    result = executor.execute(plan)
    assert result.stats.shuffle_count >= 1
    assert result.stats.network_bytes > 0
    assert result.simulated_seconds() > 0
