"""Design study on TPC-DS: comparing every variant of paper Figure 11(b).

Generates a skewed 24-table TPC-DS database and compares classical
partitioning (naive and per-star), the schema-driven and workload-driven
designs, and the two baselines on data-locality vs data-redundancy.

Run with:  python examples/tpcds_design_study.py
"""

from repro.bench import format_table, measure_variant, tpcds_variants
from repro.design import SchemaGraph
from repro.workloads.tpcds import (
    FACT_TABLES,
    SMALL_TABLES,
    generate_tpcds,
    tpcds_workload,
)

SCALE = 0.0005
NODES = 10

print(f"generating skewed TPC-DS (fraction {SCALE} of the paper's SF 10) ...")
database = generate_tpcds(scale_factor=SCALE, seed=11)
print(f"{len(database.table_names)} tables, {database.total_rows} rows")

workload = tpcds_workload()
print(f"workload: {len(workload)} SPJA blocks from 99 queries\n")

variants = tpcds_variants(database, NODES, workload, SMALL_TABLES, FACT_TABLES)
graph = SchemaGraph.from_schema(database.schema, database.table_sizes())

rows = []
for name, variant in variants.items():
    measured = measure_variant(database, variant, graph)
    rows.append(
        (
            name,
            len(variant.configs),
            round(measured.data_locality, 2),
            round(measured.data_redundancy, 2),
        )
    )
print(
    format_table(
        ["Variant", "physical configs", "data-locality", "data-redundancy"],
        rows,
        title=f"TPC-DS designs on {NODES} nodes (paper Figure 11b)",
    )
)

print(
    "\nReading the table: classical partitioning buys its locality with"
    "\nreplication (high DR); the schema-driven design is the leanest but"
    "\ncuts join edges (lower DL); the workload-driven design recovers"
    "\nper-query locality by keeping one merged MAST per query group."
)
