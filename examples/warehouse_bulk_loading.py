"""Incremental bulk loading into a PREF-partitioned warehouse (Section 2.3).

Shows how partition indexes route new tuples without joins, how locality is
maintained when referenced-side data arrives late, and what the paper's
dup/hasS bitmap indexes look like after loading.

Run with:  python examples/warehouse_bulk_loading.py
"""

from repro import (
    Database,
    DatabaseSchema,
    DataType,
    HashScheme,
    JoinPredicate,
    PartitioningConfig,
    PrefScheme,
)
from repro.partitioning import (
    BulkLoader,
    check_pref_invariants,
    partition_database,
)

schema = DatabaseSchema()
schema.create_table(
    "sales",
    [
        ("sale_id", DataType.INTEGER),
        ("product_id", DataType.INTEGER),
        ("amount", DataType.FLOAT),
    ],
    primary_key=["sale_id"],
)
schema.create_table(
    "product",
    [("product_id", DataType.INTEGER), ("label", DataType.VARCHAR)],
    primary_key=["product_id"],
)
schema.add_foreign_key("fk", "sales", ["product_id"], "product", ["product_id"])

config = PartitioningConfig(4)
config.add("sales", HashScheme(("sale_id",), 4))
config.add(
    "product",
    PrefScheme(
        "sales",
        JoinPredicate.equi("product", "product_id", "sales", "product_id"),
    ),
)

empty = Database(schema)
partitioned = partition_database(empty, config)
loader = BulkLoader(partitioned, config)

print("loading day 1: sales for products 1 and 2 ...")
stats = loader.insert(
    "sales", [(1, 1, 9.5), (2, 1, 3.0), (3, 2, 7.25), (4, 1, 1.0)]
)
print(f"  {stats.copies_written} copies written")

print("loading product catalog (PREF: placed via the partition index) ...")
stats = loader.insert("product", [(1, "anvil"), (2, "rocket"), (3, "magnet")])
print(
    f"  {stats.copies_written} copies written from {stats.rows_in} rows "
    f"({stats.index_lookups} partition-index lookups)"
)
product = partitioned.table("product")
for partition in product.partitions:
    bits = [
        f"{row[1]}(dup={int(partition.dup[i])},has={int(partition.has_partner[i])})"
        for i, row in enumerate(partition.rows)
    ]
    print(f"  node {partition.partition_id}: {bits}")

print("\nday 2: product 3 finally sells; locality is maintained ...")
stats = loader.insert("sales", [(5, 3, 42.0), (6, 3, 17.0)])
print(
    f"  {stats.copies_written} sales copies written, "
    f"{stats.propagated_copies} product copies propagated"
)
check_pref_invariants(partitioned, config)
print("  PREF locality invariant holds after the incremental load")

print("\nupdates apply to every copy; predicate columns are protected:")
updated = loader.update(
    "product",
    where=lambda row: row[0] == 1,
    assign=lambda row: (row[0], "ANVIL (deluxe)"),
)
print(f"  updated {updated} copies of product 1")
try:
    loader.update(
        "product",
        where=lambda row: row[0] == 1,
        assign=lambda row: (99, row[1]),
    )
except Exception as error:  # noqa: BLE001 - demo output
    print(f"  rejected key update: {error}")

removed = loader.delete("product", lambda row: row[0] == 2)
print(f"  deleted {removed} copies of product 2")
