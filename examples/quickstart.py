"""Quickstart: PREF-partition a small database and run SQL on the cluster.

Run with:  python examples/quickstart.py
"""

from repro import (
    Database,
    DatabaseSchema,
    DataType,
    HashScheme,
    JoinPredicate,
    PartitioningConfig,
    PrefScheme,
)
from repro.cluster import SimulatedCluster

# 1. Define a schema: customers place orders; orders have lineitems.
schema = DatabaseSchema()
schema.create_table(
    "customer",
    [("custkey", DataType.INTEGER), ("name", DataType.VARCHAR)],
    primary_key=["custkey"],
)
schema.create_table(
    "orders",
    [
        ("orderkey", DataType.INTEGER),
        ("custkey", DataType.INTEGER),
        ("total", DataType.FLOAT),
    ],
    primary_key=["orderkey"],
)
schema.add_foreign_key("fk", "orders", ["custkey"], "customer", ["custkey"])

# 2. Load some data (customer 3 has no orders).
database = Database(schema)
database.load("customer", [(1, "Ada"), (2, "Grace"), (3, "Edsger")])
database.load(
    "orders",
    [(10, 1, 99.0), (11, 1, 25.0), (12, 2, 60.0), (13, 1, 10.0)],
)

# 3. Partition for a 3-node cluster: orders hash-partitioned, customer
#    PREF-partitioned by orders so the join below never leaves a node.
config = PartitioningConfig(3)
config.add("orders", HashScheme(("orderkey",), 3))
config.add(
    "customer",
    PrefScheme(
        referenced_table="orders",
        predicate=JoinPredicate.equi("customer", "custkey", "orders", "custkey"),
    ),
)

cluster = SimulatedCluster.partition(database, config)
print(f"cluster of {cluster.node_count} nodes, DR = {cluster.data_redundancy():.2f}\n")

# 4. Run SQL.  The join is partition-local (no shuffle for the join).
query = (
    "SELECT c.name, COUNT(*) AS orders, SUM(o.total) AS revenue "
    "FROM customer c JOIN orders o ON c.custkey = o.custkey "
    "GROUP BY c.name ORDER BY revenue DESC"
)
print(cluster.explain(query))
result = cluster.sql(query)
print()
for row in result.as_dicts():
    print(row)
print(
    f"\nshuffles: {result.stats.shuffle_count}, "
    f"network bytes: {result.stats.network_bytes}, "
    f"simulated seconds: {result.simulated_seconds():.3f}"
)

# 5. Customers without orders: served by the hasS bitmap index, no join.
missing = cluster.sql(
    "SELECT c.name FROM customer c LEFT JOIN orders o "
    "ON c.custkey = o.custkey WHERE o.orderkey IS NULL"
)
print("\ncustomers without orders:", [row[0] for row in missing.rows])
