"""Workload-driven automated partitioning design on TPC-H (paper Section 4).

Extracts the join graphs of the 22 TPC-H queries, runs the WD algorithm
(per-query MASTs, containment merge, cost-based dynamic-programming merge),
and routes queries to their fragments for execution.

Run with:  python examples/tpch_workload_driven.py
"""

from repro.bench import paper_cost_parameters
from repro.cluster import SimulatedCluster
from repro.design import QuerySpec, WorkloadDrivenDesigner
from repro.workloads.tpch import ALL_QUERIES, SMALL_TABLES, generate_tpch

SCALE = 0.002
NODES = 10

database = generate_tpch(scale_factor=SCALE, seed=7)
specs = [
    QuerySpec.from_plan(name, build(), database.schema)
    for name, build in ALL_QUERIES.items()
]

designer = WorkloadDrivenDesigner(database, NODES)
result = designer.design(specs, replicate=SMALL_TABLES)

print(
    f"merge pipeline: {result.components_initial} query components "
    f"-> {result.components_after_containment} after containment "
    f"-> {len(result.fragments)} fragments after cost-based merging"
)
print(
    f"workload data-locality: {result.data_locality:.2f}, "
    f"estimated DR: {result.estimated_redundancy:.2f}\n"
)
for fragment in result.fragments:
    print(f"{fragment.name}: seeds={fragment.seeds}")
    print(fragment.config.describe())
    print(f"  queries: {', '.join(fragment.queries)}\n")

print("routing and running three queries on their fragments ...")
cost = paper_cost_parameters(SCALE)
clusters = {}
for name in ("Q3", "Q16", "Q21"):
    fragment = result.fragment_for(name)
    if fragment.name not in clusters:
        # Fragments only configure their own tables; add the replicated
        # small tables so any query routed here can run.
        from repro.bench.harness import _covering
        from repro.partitioning import PartitioningConfig, ReplicatedScheme

        config = PartitioningConfig(NODES)
        for table, scheme in fragment.config:
            config.add(table, scheme)
        for table in SMALL_TABLES:
            if table not in config:
                config.add(table, ReplicatedScheme(NODES))
        clusters[fragment.name] = SimulatedCluster.partition(
            database, _covering(database, config)
        )
    cluster = clusters[fragment.name]
    run = cluster.run(ALL_QUERIES[name]())
    print(
        f"  {name} -> {fragment.name}: {len(run.rows)} rows, "
        f"{run.stats.shuffle_count} shuffles, "
        f"simulated {run.simulated_seconds(cost):.1f}s"
    )
