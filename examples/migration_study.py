"""Migration study: what switching an existing cluster to PREF costs.

A warehouse already running classical partitioning (co-hashed big tables,
everything else replicated) evaluates moving to the automated SD design:
how much data must travel, how much stays in place, and what the new
design saves per query afterwards.

Run with:  python examples/migration_study.py
"""

from repro.bench import paper_cost_parameters
from repro.cluster import SimulatedCluster
from repro.design import SchemaDrivenDesigner, classical_partitioning
from repro.partitioning import plan_migration
from repro.workloads.tpch import ALL_QUERIES, SMALL_TABLES, generate_tpch

SCALE = 0.002
NODES = 10

database = generate_tpch(scale_factor=SCALE, seed=3)
print(f"TPC-H at SF {SCALE}: {database.total_rows} rows on {NODES} nodes\n")

cp_config = classical_partitioning(database, NODES)
sd_config = SchemaDrivenDesigner(database, NODES).design(
    replicate=SMALL_TABLES
).config

print("planning the migration Classical -> SD ...")
plan = plan_migration(database, cp_config, sd_config)
for migration in sorted(plan.tables.values(), key=lambda m: -m.copies_moved):
    if migration.copies_after == 0 and migration.copies_before == 0:
        continue
    print(
        f"  {migration.table:10s} {migration.copies_before:>7} -> "
        f"{migration.copies_after:>7} copies "
        f"(move {migration.copies_moved}, keep {migration.copies_kept}, "
        f"drop {migration.copies_dropped})"
    )
row_scale = 10.0 / SCALE
print(
    f"\ntotal: {plan.copies_moved} copies moved "
    f"({plan.moved_fraction:.0%} of the target layout), "
    f"~{plan.simulated_seconds(row_scale=row_scale):.0f}s of bulk transfer "
    "at deployment scale"
)

print("\nwhat the migration buys (Q2, Q11, Q16 on both designs):")
cost = paper_cost_parameters(SCALE)
for label, config in (("Classical", cp_config), ("SD", sd_config)):
    cluster = SimulatedCluster.partition(database, config)
    seconds = {
        name: cluster.run(ALL_QUERIES[name]()).simulated_seconds(cost)
        for name in ("Q2", "Q11", "Q16")
    }
    rendered = ", ".join(f"{k}={v:.1f}s" for k, v in seconds.items())
    print(f"  {label:10s} {rendered}")
