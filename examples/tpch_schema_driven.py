"""Schema-driven automated partitioning design on TPC-H (paper Section 3).

Generates a small TPC-H database, runs the SD algorithm (with and without
redundancy constraints), materialises both designs, and compares
data-locality, data-redundancy and a few query runtimes.

Run with:  python examples/tpch_schema_driven.py
"""

from repro.bench import paper_cost_parameters
from repro.cluster import SimulatedCluster
from repro.design import SchemaDrivenDesigner
from repro.workloads.tpch import ALL_QUERIES, SMALL_TABLES, generate_tpch

SCALE = 0.002
NODES = 10

print(f"generating TPC-H at SF {SCALE} ...")
database = generate_tpch(scale_factor=SCALE, seed=7)
print({name: table.row_count for name, table in database.tables.items()})

designer = SchemaDrivenDesigner(database, NODES)

print("\n--- SD (small tables replicated) ---")
result = designer.design(replicate=SMALL_TABLES)
print(result.config.describe())
print(
    f"seeds: {result.seeds}  data-locality: {result.data_locality:.2f}  "
    f"estimated DR: {result.estimated_redundancy:.2f}"
)

print("\n--- SD with no-redundancy constraints ---")
partitioned_tables = [
    name for name in database.schema.table_names if name not in SMALL_TABLES
]
constrained = designer.design(
    replicate=SMALL_TABLES, no_redundancy=partitioned_tables
)
print(constrained.config.describe())
print(
    f"seeds: {constrained.seeds}  data-locality: {constrained.data_locality:.2f}  "
    f"estimated DR: {constrained.estimated_redundancy:.2f}"
)

print("\nmaterialising both designs and running Q3, Q5, Q9 ...")
cost = paper_cost_parameters(SCALE)
for label, design in (("SD", result), ("SD wo redundancy", constrained)):
    cluster = SimulatedCluster.partition(database, design.config)
    print(f"\n{label}: actual DR = {cluster.data_redundancy():.2f}")
    for name in ("Q3", "Q5", "Q9"):
        run = cluster.run(ALL_QUERIES[name]())
        print(
            f"  {name}: {len(run.rows)} rows, "
            f"{run.stats.shuffle_count} shuffles, "
            f"simulated {run.simulated_seconds(cost):.1f}s"
        )
